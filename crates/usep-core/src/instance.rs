//! USEP problem instances.

use crate::cost::Cost;
use crate::error::{BuildError, ValidateError};
use crate::event::Event;
use crate::geo::Point;
use crate::ids::{EventId, UserId};
use crate::temporal::TemporalIndex;
use crate::time::TimeInterval;
use crate::user::User;
use serde::{Deserialize, Serialize};

/// How travel costs between locations are derived.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TravelCost {
    /// Costs are Manhattan distances between the integer-grid locations of
    /// events and users (the paper's experimental setting).
    ///
    /// `time_per_unit` gates *temporal* reachability between events: a
    /// pair `(v_i, v_j)` with `v_i` ending before `v_j` starts is still
    /// unreachable (cost `+∞`) when
    /// `t2_i + time_per_unit · dist(v_i, v_j) > t1_j`. With
    /// `time_per_unit = 0` (money-cost mode, the default) every
    /// non-overlapping pair is reachable.
    Grid {
        /// Travel time per unit of Manhattan distance.
        time_per_unit: u32,
    },
    /// Explicit cost matrices, for hand-built instances and reductions.
    ///
    /// `user_event[u * |V| + v]` is the symmetric cost between user `u`
    /// and event `v` (the paper's `cost(u, v) = cost(v, u)` — both are
    /// distances between the same two locations).
    /// `event_event[i * |V| + j]` is the directed cost of attending `j`
    /// right after `i`; it **must** be [`Cost::INFINITE`] whenever `i`
    /// does not temporally precede `j`.
    Explicit {
        /// `|U| × |V|` row-major user-event costs.
        user_event: Vec<Cost>,
        /// `|V| × |V|` row-major directed event-event costs.
        event_event: Vec<Cost>,
    },
}

/// A complete USEP problem instance.
///
/// Construction goes through [`InstanceBuilder`], which validates the
/// input and precomputes the directed event-event cost matrix (with
/// infinities for spatio-temporally incompatible pairs) and the
/// [`TemporalIndex`]. Instances are immutable afterwards, so the
/// precomputed structures can never go stale.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(from = "InstanceData", into = "InstanceData")]
pub struct Instance {
    events: Vec<Event>,
    users: Vec<User>,
    /// Dense utilities, row-major by user: `mu[u * |V| + v]`.
    mu: Vec<f32>,
    travel: TravelCost,
    /// Participation fees per event (Remark 2); empty means all zero.
    fees: Vec<u32>,
    /// Precomputed `|V| × |V|` directed costs — the fee of the *target*
    /// event folded in, infinite when incompatible.
    event_costs: Vec<Cost>,
    temporal: TemporalIndex,
    /// Lazily-built SoA lowering ([`Instance::freeze`]); shared by
    /// every solve of this instance, dropped on serialization.
    flat: std::sync::OnceLock<std::sync::Arc<crate::flat::FlatInstance>>,
}

// The flat cache is a derived artifact, not identity: a frozen and a
// never-frozen copy of the same data must compare equal (serde
// round-trips rebuild instances without the cache).
impl PartialEq for Instance {
    fn eq(&self, other: &Instance) -> bool {
        self.events == other.events
            && self.users == other.users
            && self.mu == other.mu
            && self.travel == other.travel
            && self.fees == other.fees
    }
}

/// Serialized form of an [`Instance`] (precomputed structures are rebuilt
/// on deserialization).
#[derive(Clone, Serialize, Deserialize)]
struct InstanceData {
    events: Vec<Event>,
    users: Vec<User>,
    mu: Vec<f32>,
    travel: TravelCost,
    #[serde(default)]
    fees: Vec<u32>,
}

impl From<Instance> for InstanceData {
    fn from(i: Instance) -> InstanceData {
        InstanceData { events: i.events, users: i.users, mu: i.mu, travel: i.travel, fees: i.fees }
    }
}

impl From<InstanceData> for Instance {
    fn from(d: InstanceData) -> Instance {
        // Serialized instances were validated at original build time; the
        // derived structures are deterministic functions of the data.
        Instance::assemble(d.events, d.users, d.mu, d.travel, d.fees)
    }
}

pub mod patch;

impl Instance {
    fn assemble(
        events: Vec<Event>,
        users: Vec<User>,
        mu: Vec<f32>,
        travel: TravelCost,
        fees: Vec<u32>,
    ) -> Instance {
        let event_costs = compute_event_costs(&events, &travel, &fees);
        let temporal = TemporalIndex::build(&events);
        Instance {
            events,
            users,
            mu,
            travel,
            fees,
            event_costs,
            temporal,
            flat: std::sync::OnceLock::new(),
        }
    }

    /// The one-shot SoA lowering of this instance (see
    /// [`FlatInstance`](crate::FlatInstance)): built on first call,
    /// cached, and shared — repeat calls, clones of the returned `Arc`,
    /// worker threads and serve-retry attempts all borrow the same
    /// arrays. The instance is immutable after construction, so the
    /// lowering can never go stale.
    pub fn freeze(&self) -> std::sync::Arc<crate::flat::FlatInstance> {
        self.flat
            .get_or_init(|| std::sync::Arc::new(crate::flat::FlatInstance::build(self)))
            .clone()
    }

    /// Number of events `|V|`.
    #[inline]
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of users `|U|`.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// The event with index `v`.
    #[inline]
    pub fn event(&self, v: EventId) -> &Event {
        &self.events[v.index()]
    }

    /// The user with index `u`.
    #[inline]
    pub fn user(&self, u: UserId) -> &User {
        &self.users[u.index()]
    }

    /// All events, indexed by `EventId`.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// All users, indexed by `UserId`.
    #[inline]
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// Iterator over all event ids.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.events.len() as u32).map(EventId)
    }

    /// Iterator over all user ids.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.users.len() as u32).map(UserId)
    }

    /// Utility `μ(v, u) ∈ [0, 1]`.
    #[inline]
    pub fn mu(&self, v: EventId, u: UserId) -> f64 {
        f64::from(self.mu[u.index() * self.events.len() + v.index()])
    }

    /// The row of utilities of user `u` over all events (indexed by
    /// `EventId`), for cache-friendly per-user scans.
    #[inline]
    pub fn mu_row(&self, u: UserId) -> &[f32] {
        let nv = self.events.len();
        &self.mu[u.index() * nv..(u.index() + 1) * nv]
    }

    /// Raw travel cost between user `u` and event `v` — symmetric, no
    /// fee. Prefer [`cost_to_event`](Instance::cost_to_event) /
    /// [`cost_from_event`](Instance::cost_from_event) in scheduling code,
    /// which fold in participation fees (Remark 2).
    #[inline]
    pub fn cost_uv(&self, u: UserId, v: EventId) -> Cost {
        match &self.travel {
            TravelCost::Grid { .. } => {
                self.users[u.index()].location.cost_to(self.events[v.index()].location)
            }
            TravelCost::Explicit { user_event, .. } => {
                user_event[u.index() * self.events.len() + v.index()]
            }
        }
    }

    /// The raw participation-fee vector (Remark 2): one entry per event,
    /// or empty when every fee is zero. Oracle-facing accessor — external
    /// validators and instance transforms rebuild instances from this
    /// plus [`Instance::events`]/[`Instance::users`]/[`Instance::mu_row`]
    /// and [`Instance::travel`].
    #[inline]
    pub fn fees(&self) -> &[u32] {
        &self.fees
    }

    /// The participation fee of event `v` (Remark 2; 0 by default).
    #[inline]
    pub fn fee(&self, v: EventId) -> u32 {
        if self.fees.is_empty() {
            0
        } else {
            self.fees[v.index()]
        }
    }

    /// Cost of traveling *to* event `v` from home: `cost(u, v) + fee_v`
    /// (the Remark-2 reduction charges each event's fee on the inbound
    /// leg).
    #[inline]
    pub fn cost_to_event(&self, u: UserId, v: EventId) -> Cost {
        let c = self.cost_uv(u, v);
        if self.fees.is_empty() {
            c
        } else {
            c.add(Cost::new(self.fees[v.index()]))
        }
    }

    /// Cost of traveling home *from* event `v`: the plain `cost(v, u)`
    /// (no fee on the way out).
    #[inline]
    pub fn cost_from_event(&self, v: EventId, u: UserId) -> Cost {
        self.cost_uv(u, v)
    }

    /// Directed cost of attending event `j` right after event `i`
    /// (including `j`'s fee); [`Cost::INFINITE`] when the pair is
    /// spatio-temporally incompatible.
    #[inline]
    pub fn cost_vv(&self, i: EventId, j: EventId) -> Cost {
        self.event_costs[i.index() * self.events.len() + j.index()]
    }

    /// Round-trip cost `cost(u, v) + fee_v + cost(v, u)` of attending
    /// only `v`.
    #[inline]
    pub fn round_trip(&self, u: UserId, v: EventId) -> Cost {
        self.cost_to_event(u, v).add(self.cost_from_event(v, u))
    }

    /// A copy of this instance with per-user candidate sets applied
    /// (Remark 1): `μ(v, u)` is zeroed for every `v ∉ sets[u]`, so no
    /// algorithm will ever arrange an event outside a user's list.
    ///
    /// # Panics
    /// Panics unless `sets.len() == |U|`.
    pub fn restrict_candidates(&self, sets: &[Vec<EventId>]) -> Instance {
        assert_eq!(sets.len(), self.num_users(), "one candidate set per user");
        let nv = self.num_events();
        let mut mu = self.mu.clone();
        for (u, set) in sets.iter().enumerate() {
            let mut allowed = vec![false; nv];
            for v in set {
                allowed[v.index()] = true;
            }
            for (v, ok) in allowed.iter().enumerate() {
                if !ok {
                    mu[u * nv + v] = 0.0;
                }
            }
        }
        Instance::assemble(
            self.events.clone(),
            self.users.clone(),
            mu,
            self.travel.clone(),
            self.fees.clone(),
        )
    }

    /// The end-time ordering of events.
    #[inline]
    pub fn temporal(&self) -> &TemporalIndex {
        &self.temporal
    }

    /// How travel costs are derived.
    #[inline]
    pub fn travel(&self) -> &TravelCost {
        &self.travel
    }

    /// Whether events `i` and `j` can both appear in one schedule (in some
    /// order).
    #[inline]
    pub fn compatible(&self, i: EventId, j: EventId) -> bool {
        self.cost_vv(i, j).is_finite() || self.cost_vv(j, i).is_finite()
    }

    /// The conflict ratio `cr` of the instance: the fraction of unordered
    /// event pairs that are spatio-temporally conflicting (cannot both be
    /// attended by any user, in either order). This is the statistic the
    /// paper's generator targets (Table 7).
    pub fn conflict_ratio(&self) -> f64 {
        let n = self.events.len();
        if n < 2 {
            return 0.0;
        }
        let mut conflicts = 0u64;
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if !self.compatible(EventId(i), EventId(j)) {
                    conflicts += 1;
                }
            }
        }
        conflicts as f64 / (n as u64 * (n as u64 - 1) / 2) as f64
    }

    /// Total utility mass `Σ_{v,u} μ(v, u)` — an upper bound scale for Ω
    /// used by tests and sanity checks.
    pub fn total_utility_mass(&self) -> f64 {
        self.mu.iter().map(|&m| f64::from(m)).sum()
    }

    /// Re-checks the invariants [`InstanceBuilder::build`] enforces, on
    /// an instance that may have bypassed the builder.
    ///
    /// Deserialization (`from = "InstanceData"`) trusts its input, so
    /// adversarial or corrupted JSON can smuggle in values no builder
    /// would accept: `NaN` utilities (the vendored serde maps JSON
    /// `null` to `NaN`), utilities outside `[0, 1]`, zero capacities,
    /// empty time intervals, `u32::MAX` (infinite) budgets, misshapen
    /// matrices, and triangle-inequality violations. Any of these can
    /// later panic deep inside a solver or silently corrupt the
    /// objective; call `validate` before solving anything untrusted.
    ///
    /// The triangle-inequality audit is exhaustive for small explicit
    /// matrices and deterministic spot sampling beyond that (the full
    /// `O(|V|³ + |U||V|²)` audit stays available through
    /// [`InstanceBuilder`]).
    pub fn validate(&self) -> Result<(), ValidateError> {
        let nv = self.events.len();
        let nu = self.users.len();

        if self.mu.len() != nv * nu {
            return Err(ValidateError::UtilityShape { expected: nv * nu, got: self.mu.len() });
        }
        for (idx, &val) in self.mu.iter().enumerate() {
            if !val.is_finite() || !(0.0..=1.0).contains(&val) {
                return Err(ValidateError::Utility {
                    event: EventId((idx % nv) as u32),
                    user: UserId((idx / nv) as u32),
                    value: f64::from(val),
                });
            }
        }

        for (i, e) in self.events.iter().enumerate() {
            if e.capacity == 0 {
                return Err(ValidateError::ZeroCapacity(EventId(i as u32)));
            }
            if e.time.start() >= e.time.end() {
                return Err(ValidateError::EmptyInterval {
                    event: EventId(i as u32),
                    start: e.time.start(),
                    end: e.time.end(),
                });
            }
        }

        for (i, u) in self.users.iter().enumerate() {
            if u.budget.is_infinite() {
                return Err(ValidateError::InfiniteBudget(UserId(i as u32)));
            }
        }

        if !self.fees.is_empty() && self.fees.len() != nv {
            return Err(ValidateError::FeeShape { expected: nv, got: self.fees.len() });
        }
        for (i, &fee) in self.fees.iter().enumerate() {
            if fee == u32::MAX {
                return Err(ValidateError::InfiniteFee(EventId(i as u32)));
            }
        }

        if let TravelCost::Explicit { user_event, event_event } = &self.travel {
            if user_event.len() != nu * nv {
                return Err(ValidateError::CostShape {
                    which: "user_event",
                    expected: nu * nv,
                    got: user_event.len(),
                });
            }
            if event_event.len() != nv * nv {
                return Err(ValidateError::CostShape {
                    which: "event_event",
                    expected: nv * nv,
                    got: event_event.len(),
                });
            }
            for i in 0..nv {
                for j in 0..nv {
                    let incompatible =
                        i == j || !self.events[i].time.precedes(self.events[j].time);
                    if incompatible && event_event[i * nv + j].is_finite() {
                        return Err(ValidateError::FiniteCostForConflict(
                            EventId(i as u32),
                            EventId(j as u32),
                        ));
                    }
                }
            }
            spot_check_triangle(nv, nu, user_event, event_event)?;
        }

        Ok(())
    }
}

/// Per-family sample budget of the [`Instance::validate`] triangle
/// audit: below this many triples a family is checked exhaustively,
/// above it the same number of deterministically-sampled triples.
const TRIANGLE_SPOT_SAMPLES: u64 = 4096;

fn spot_check_triangle(
    nv: usize,
    nu: usize,
    user_event: &[Cost],
    event_event: &[Cost],
) -> Result<(), ValidateError> {
    if nv == 0 {
        return Ok(());
    }
    let ee = |i: usize, j: usize| event_event[i * nv + j];
    let ue = |u: usize, v: usize| user_event[u * nv + v];

    let check_eee = |i: usize, j: usize, k: usize| -> Result<(), ValidateError> {
        if ee(i, j).is_finite()
            && ee(j, k).is_finite()
            && ee(i, k).is_finite()
            && ee(i, k) > ee(i, j).add(ee(j, k))
        {
            return Err(ValidateError::TriangleViolation {
                detail: format!(
                    "cost(v{i}, v{k}) = {} > cost(v{i}, v{j}) + cost(v{j}, v{k}) = {}",
                    ee(i, k),
                    ee(i, j).add(ee(j, k))
                ),
            });
        }
        Ok(())
    };
    let check_uee = |u: usize, i: usize, j: usize| -> Result<(), ValidateError> {
        if ee(i, j).is_infinite() {
            return Ok(());
        }
        if ue(u, j) > ue(u, i).add(ee(i, j)) {
            return Err(ValidateError::TriangleViolation {
                detail: format!(
                    "cost(u{u}, v{j}) = {} > cost(u{u}, v{i}) + cost(v{i}, v{j}) = {}",
                    ue(u, j),
                    ue(u, i).add(ee(i, j))
                ),
            });
        }
        if ee(i, j) > ue(u, i).add(ue(u, j)) {
            return Err(ValidateError::TriangleViolation {
                detail: format!(
                    "cost(v{i}, v{j}) = {} > cost(v{i}, u{u}) + cost(u{u}, v{j}) = {}",
                    ee(i, j),
                    ue(u, i).add(ue(u, j))
                ),
            });
        }
        Ok(())
    };

    // fixed-seed xorshift64* so validation is deterministic
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move |m: usize| -> usize {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) % m as u64) as usize
    };

    let eee_total = (nv as u64).saturating_pow(3);
    if eee_total <= TRIANGLE_SPOT_SAMPLES {
        for i in 0..nv {
            for j in 0..nv {
                for k in 0..nv {
                    check_eee(i, j, k)?;
                }
            }
        }
    } else {
        for _ in 0..TRIANGLE_SPOT_SAMPLES {
            check_eee(next(nv), next(nv), next(nv))?;
        }
    }

    let uee_total = (nu as u64).saturating_mul((nv as u64).saturating_pow(2));
    if uee_total <= TRIANGLE_SPOT_SAMPLES {
        for u in 0..nu {
            for i in 0..nv {
                for j in 0..nv {
                    check_uee(u, i, j)?;
                }
            }
        }
    } else {
        for _ in 0..TRIANGLE_SPOT_SAMPLES {
            check_uee(next(nu), next(nv), next(nv))?;
        }
    }

    Ok(())
}

fn compute_event_costs(events: &[Event], travel: &TravelCost, fees: &[u32]) -> Vec<Cost> {
    let n = events.len();
    let mut costs = vec![Cost::INFINITE; n * n];
    match travel {
        TravelCost::Grid { time_per_unit } => {
            for i in 0..n {
                for j in 0..n {
                    if i == j || !events[i].time.precedes(events[j].time) {
                        continue;
                    }
                    let dist = events[i].location.cost_to(events[j].location);
                    let reachable = if *time_per_unit == 0 {
                        true
                    } else if let Some(d) = dist.finite_value() {
                        let travel_time = u64::from(d) * u64::from(*time_per_unit);
                        let gap = events[i].time.gap_before(events[j].time).unwrap_or(0);
                        gap >= 0 && travel_time <= gap as u64
                    } else {
                        false
                    };
                    if reachable {
                        costs[i * n + j] = dist;
                    }
                }
            }
        }
        TravelCost::Explicit { event_event, .. } => {
            // A wrong-length matrix (corrupted or forged file) must not
            // panic here — deserialization runs before `validate` can
            // report the shape error. Leave the costs all-infinite; the
            // instance is unusable either way until validation rejects it.
            if event_event.len() == costs.len() {
                costs.copy_from_slice(event_event);
            }
        }
    }
    // Remark 2: the fee of the target event rides on the inbound leg.
    // A misshapen fee vector or an infinite (`u32::MAX`) fee comes from
    // a corrupted or forged file; like the wrong-length matrix above it
    // must not panic here, because deserialization runs before
    // `validate` can report the error. Skip — validation rejects the
    // instance before any solver sees these costs.
    if fees.len() == n {
        for j in 0..n {
            if fees[j] == 0 || fees[j] == u32::MAX {
                continue;
            }
            let fee = Cost::new(fees[j]);
            for i in 0..n {
                let c = &mut costs[i * n + j];
                if c.is_finite() {
                    *c = c.add(fee);
                }
            }
        }
    }
    costs
}

/// Incremental builder and validator for [`Instance`]s.
///
/// ```
/// use usep_core::{InstanceBuilder, Point, TimeInterval, Cost};
/// let mut b = InstanceBuilder::new();
/// let v = b.event(1, Point::new(0, 0), TimeInterval::new(0, 10).unwrap());
/// let u = b.user(Point::new(1, 0), Cost::new(10));
/// b.utility(v, u, 0.8);
/// let inst = b.build().unwrap();
/// assert_eq!(inst.mu(v, u), 0.800000011920929); // stored as f32
/// ```
#[derive(Clone, Debug, Default)]
pub struct InstanceBuilder {
    events: Vec<Event>,
    users: Vec<User>,
    sparse_mu: Vec<(EventId, UserId, f64)>,
    dense_mu: Option<Vec<f32>>,
    travel: Option<TravelCost>,
    fees: Vec<(EventId, u32)>,
    skip_triangle_check: bool,
}

impl InstanceBuilder {
    /// An empty builder (grid travel costs with `time_per_unit = 0` by
    /// default).
    pub fn new() -> InstanceBuilder {
        InstanceBuilder::default()
    }

    /// Adds an event, returning its id.
    pub fn event(&mut self, capacity: u32, location: Point, time: TimeInterval) -> EventId {
        self.events.push(Event::new(capacity, location, time));
        EventId(self.events.len() as u32 - 1)
    }

    /// Adds a user, returning its id.
    pub fn user(&mut self, location: Point, budget: Cost) -> UserId {
        self.users.push(User::new(location, budget));
        UserId(self.users.len() as u32 - 1)
    }

    /// Sets a single utility value (unset pairs default to 0 — "not
    /// interested", per the utility constraint).
    pub fn utility(&mut self, v: EventId, u: UserId, value: f64) -> &mut Self {
        self.sparse_mu.push((v, u, value));
        self
    }

    /// Installs a full dense utility matrix, row-major by user
    /// (`mu[u * |V| + v]`). Overrides any sparse values set so far.
    pub fn utility_matrix(&mut self, mu: Vec<f32>) -> &mut Self {
        self.dense_mu = Some(mu);
        self
    }

    /// Sets the travel-cost model (defaults to
    /// `TravelCost::Grid { time_per_unit: 0 }`).
    pub fn travel(&mut self, travel: TravelCost) -> &mut Self {
        self.travel = Some(travel);
        self
    }

    /// Sets a participation fee for event `v` (Remark 2). Fees are
    /// charged on the inbound leg of the Remark-2 cost reduction:
    /// `cost'(u, v) = cost(u, v) + fee_v` and
    /// `cost'(v_i, v_j) = cost(v_i, v_j) + fee_{v_j}`.
    pub fn fee(&mut self, v: EventId, amount: u32) -> &mut Self {
        self.fees.push((v, amount));
        self
    }

    /// Disables the `O(|V|³ + |U||V|²)` triangle-inequality audit of
    /// explicit cost matrices. Grid costs are metric by construction and
    /// never audited. Only use this for large explicit instances whose
    /// costs are known to be metric.
    pub fn skip_triangle_check(&mut self) -> &mut Self {
        self.skip_triangle_check = true;
        self
    }

    /// Validates and builds the instance.
    pub fn build(&mut self) -> Result<Instance, BuildError> {
        let nv = self.events.len();
        let nu = self.users.len();

        for (i, e) in self.events.iter().enumerate() {
            if e.capacity == 0 {
                return Err(BuildError::ZeroCapacity(EventId(i as u32)));
            }
        }

        let mu = match self.dense_mu.take() {
            Some(m) => {
                if m.len() != nv * nu {
                    return Err(BuildError::BadMatrixShape {
                        which: "utility",
                        expected: nv * nu,
                        got: m.len(),
                    });
                }
                m
            }
            None => {
                let mut m = vec![0.0f32; nv * nu];
                for &(v, u, val) in &self.sparse_mu {
                    if v.index() >= nv || u.index() >= nu {
                        return Err(BuildError::UnknownId(format!("utility({v}, {u})")));
                    }
                    m[u.index() * nv + v.index()] = val as f32;
                }
                m
            }
        };
        for (idx, &val) in mu.iter().enumerate() {
            if !(0.0..=1.0).contains(&val) || !val.is_finite() {
                return Err(BuildError::BadUtility {
                    event: EventId((idx % nv) as u32),
                    user: UserId((idx / nv) as u32),
                    value: f64::from(val),
                });
            }
        }

        let travel = self.travel.take().unwrap_or(TravelCost::Grid { time_per_unit: 0 });
        if let TravelCost::Explicit { user_event, event_event } = &travel {
            if user_event.len() != nu * nv {
                return Err(BuildError::BadMatrixShape {
                    which: "user_event",
                    expected: nu * nv,
                    got: user_event.len(),
                });
            }
            if event_event.len() != nv * nv {
                return Err(BuildError::BadMatrixShape {
                    which: "event_event",
                    expected: nv * nv,
                    got: event_event.len(),
                });
            }
            for i in 0..nv {
                for j in 0..nv {
                    let incompatible =
                        i == j || !self.events[i].time.precedes(self.events[j].time);
                    if incompatible && event_event[i * nv + j].is_finite() {
                        return Err(BuildError::FiniteCostForConflict(
                            EventId(i as u32),
                            EventId(j as u32),
                        ));
                    }
                }
            }
            if !self.skip_triangle_check {
                audit_triangle(&self.events, nu, user_event, event_event)?;
            }
        }

        let fees = if self.fees.is_empty() {
            Vec::new()
        } else {
            let mut f = vec![0u32; nv];
            for &(v, amount) in &self.fees {
                if v.index() >= nv {
                    return Err(BuildError::UnknownId(format!("fee({v})")));
                }
                f[v.index()] = amount;
            }
            f
        };

        Ok(Instance::assemble(
            std::mem::take(&mut self.events),
            std::mem::take(&mut self.users),
            mu,
            travel,
            fees,
        ))
    }
}

/// Checks the triangle inequality over all finite-cost triples of an
/// explicit cost model. Eq. (3)'s incremental costs are only guaranteed
/// non-negative under this assumption, which the problem statement makes.
fn audit_triangle(
    events: &[Event],
    nu: usize,
    user_event: &[Cost],
    event_event: &[Cost],
) -> Result<(), BuildError> {
    let nv = events.len();
    let ee = |i: usize, j: usize| event_event[i * nv + j];
    let ue = |u: usize, v: usize| user_event[u * nv + v];
    // event-event-event: cost(i, k) ≤ cost(i, j) + cost(j, k)
    for i in 0..nv {
        for j in 0..nv {
            if ee(i, j).is_infinite() {
                continue;
            }
            for k in 0..nv {
                if ee(j, k).is_infinite() || ee(i, k).is_infinite() {
                    continue;
                }
                if ee(i, k) > ee(i, j).add(ee(j, k)) {
                    return Err(BuildError::TriangleViolation {
                        detail: format!(
                            "cost(v{i}, v{k}) = {} > cost(v{i}, v{j}) + cost(v{j}, v{k}) = {}",
                            ee(i, k),
                            ee(i, j).add(ee(j, k))
                        ),
                    });
                }
            }
        }
    }
    // user legs: cost(u, j) ≤ cost(u, i) + cost(i, j) and
    //            cost(i, j) ≤ cost(i, u) + cost(u, j)
    for u in 0..nu {
        for i in 0..nv {
            for j in 0..nv {
                if ee(i, j).is_infinite() {
                    continue;
                }
                if ue(u, j) > ue(u, i).add(ee(i, j)) {
                    return Err(BuildError::TriangleViolation {
                        detail: format!(
                            "cost(u{u}, v{j}) = {} > cost(u{u}, v{i}) + cost(v{i}, v{j}) = {}",
                            ue(u, j),
                            ue(u, i).add(ee(i, j))
                        ),
                    });
                }
                if ee(i, j) > ue(u, i).add(ue(u, j)) {
                    return Err(BuildError::TriangleViolation {
                        detail: format!(
                            "cost(v{i}, v{j}) = {} > cost(v{i}, u{u}) + cost(u{u}, v{j}) = {}",
                            ee(i, j),
                            ue(u, i).add(ue(u, j))
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn small_grid_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        b.event(2, Point::new(0, 0), iv(0, 10));
        b.event(1, Point::new(5, 5), iv(10, 20));
        b.event(3, Point::new(2, 2), iv(5, 15)); // overlaps both
        let u0 = b.user(Point::new(1, 1), Cost::new(50));
        let u1 = b.user(Point::new(4, 4), Cost::new(30));
        b.utility(EventId(0), u0, 0.5);
        b.utility(EventId(1), u0, 0.7);
        b.utility(EventId(2), u1, 0.9);
        b.build().unwrap()
    }

    #[test]
    fn grid_event_costs_respect_time_order() {
        let inst = small_grid_instance();
        // v0 [0,10] precedes v1 [10,20]: distance 10
        assert_eq!(inst.cost_vv(EventId(0), EventId(1)), Cost::new(10));
        // reverse direction impossible
        assert!(inst.cost_vv(EventId(1), EventId(0)).is_infinite());
        // overlapping pairs are infinite both ways
        assert!(inst.cost_vv(EventId(0), EventId(2)).is_infinite());
        assert!(inst.cost_vv(EventId(2), EventId(0)).is_infinite());
        // diagonal is infinite (an event cannot follow itself)
        assert!(inst.cost_vv(EventId(0), EventId(0)).is_infinite());
    }

    #[test]
    fn compatible_and_conflict_ratio() {
        let inst = small_grid_instance();
        assert!(inst.compatible(EventId(0), EventId(1)));
        assert!(!inst.compatible(EventId(0), EventId(2)));
        assert!(!inst.compatible(EventId(1), EventId(2)));
        // pairs: (0,1) ok, (0,2) conflict, (1,2) conflict → cr = 2/3
        assert!((inst.conflict_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn utilities_default_to_zero() {
        let inst = small_grid_instance();
        assert_eq!(inst.mu(EventId(0), UserId(1)), 0.0);
        assert!((inst.mu(EventId(1), UserId(0)) - 0.7).abs() < 1e-6);
        let row = inst.mu_row(UserId(0));
        assert_eq!(row.len(), 3);
        assert!((f64::from(row[1]) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn user_event_costs_are_symmetric_distances() {
        let inst = small_grid_instance();
        assert_eq!(inst.cost_uv(UserId(0), EventId(0)), Cost::new(2));
        assert_eq!(inst.round_trip(UserId(0), EventId(0)), Cost::new(4));
    }

    #[test]
    fn travel_time_gating() {
        let mut b = InstanceBuilder::new();
        // gap of 5 between the events, distance 10
        b.event(1, Point::new(0, 0), iv(0, 10));
        b.event(1, Point::new(10, 0), iv(15, 20));
        b.user(Point::ORIGIN, Cost::new(100));
        b.travel(TravelCost::Grid { time_per_unit: 1 });
        let inst = b.build().unwrap();
        // needs 10 time units to travel but only 5 available
        assert!(inst.cost_vv(EventId(0), EventId(1)).is_infinite());

        let mut b = InstanceBuilder::new();
        b.event(1, Point::new(0, 0), iv(0, 10));
        b.event(1, Point::new(10, 0), iv(25, 30));
        b.user(Point::ORIGIN, Cost::new(100));
        b.travel(TravelCost::Grid { time_per_unit: 1 });
        let inst = b.build().unwrap();
        assert_eq!(inst.cost_vv(EventId(0), EventId(1)), Cost::new(10));
    }

    #[test]
    fn zero_capacity_rejected() {
        let mut b = InstanceBuilder::new();
        b.event(0, Point::ORIGIN, iv(0, 1));
        assert_eq!(b.build().unwrap_err(), BuildError::ZeroCapacity(EventId(0)));
    }

    #[test]
    fn bad_utility_rejected() {
        let mut b = InstanceBuilder::new();
        let v = b.event(1, Point::ORIGIN, iv(0, 1));
        let u = b.user(Point::ORIGIN, Cost::new(5));
        b.utility(v, u, 1.5);
        assert!(matches!(b.build().unwrap_err(), BuildError::BadUtility { .. }));
    }

    #[test]
    fn explicit_matrix_shape_checked() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 1));
        b.user(Point::ORIGIN, Cost::new(5));
        b.travel(TravelCost::Explicit { user_event: vec![], event_event: vec![Cost::INFINITE] });
        assert!(matches!(b.build().unwrap_err(), BuildError::BadMatrixShape { .. }));
    }

    #[test]
    fn explicit_finite_cost_for_conflict_rejected() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 10));
        b.event(1, Point::ORIGIN, iv(5, 15));
        b.user(Point::ORIGIN, Cost::new(5));
        b.travel(TravelCost::Explicit {
            user_event: vec![Cost::new(1), Cost::new(1)],
            event_event: vec![
                Cost::INFINITE,
                Cost::new(3), // overlapping pair must be infinite
                Cost::INFINITE,
                Cost::INFINITE,
            ],
        });
        assert!(matches!(b.build().unwrap_err(), BuildError::FiniteCostForConflict(..)));
    }

    #[test]
    fn triangle_violation_rejected() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 1));
        b.event(1, Point::ORIGIN, iv(2, 3));
        b.event(1, Point::ORIGIN, iv(4, 5));
        b.user(Point::ORIGIN, Cost::new(50));
        // cost(v0, v2) = 10 > cost(v0, v1) + cost(v1, v2) = 2
        let inf = Cost::INFINITE;
        b.travel(TravelCost::Explicit {
            user_event: vec![Cost::new(5), Cost::new(5), Cost::new(5)],
            event_event: vec![
                inf,
                Cost::new(1),
                Cost::new(10),
                inf,
                inf,
                Cost::new(1),
                inf,
                inf,
                inf,
            ],
        });
        assert!(matches!(b.build().unwrap_err(), BuildError::TriangleViolation { .. }));
    }

    #[test]
    fn valid_explicit_instance_builds() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 1));
        b.event(1, Point::ORIGIN, iv(2, 3));
        b.user(Point::ORIGIN, Cost::new(50));
        let inf = Cost::INFINITE;
        b.travel(TravelCost::Explicit {
            user_event: vec![Cost::new(2), Cost::new(3)],
            event_event: vec![inf, Cost::new(4), inf, inf],
        });
        let inst = b.build().unwrap();
        assert_eq!(inst.cost_vv(EventId(0), EventId(1)), Cost::new(4));
        assert_eq!(inst.cost_uv(UserId(0), EventId(1)), Cost::new(3));
    }

    #[test]
    fn serde_roundtrip_rebuilds_derived_state() {
        let inst = small_grid_instance();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inst);
        assert_eq!(back.cost_vv(EventId(0), EventId(1)), Cost::new(10));
        assert_eq!(back.temporal().len(), 3);
    }

    #[test]
    fn fees_fold_into_directed_costs() {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::new(0, 0), iv(0, 10));
        let v1 = b.event(1, Point::new(4, 0), iv(10, 20));
        let u = b.user(Point::new(1, 0), Cost::new(100));
        b.utility(v0, u, 0.5);
        b.utility(v1, u, 0.5);
        b.fee(v0, 3).fee(v1, 9);
        let inst = b.build().unwrap();
        assert_eq!(inst.fee(v0), 3);
        assert_eq!(inst.fee(v1), 9);
        // inbound legs carry the target's fee
        assert_eq!(inst.cost_to_event(u, v0), Cost::new(1 + 3));
        assert_eq!(inst.cost_from_event(v0, u), Cost::new(1));
        assert_eq!(inst.cost_vv(v0, v1), Cost::new(4 + 9));
        // infeasible directions stay infinite
        assert!(inst.cost_vv(v1, v0).is_infinite());
        assert_eq!(inst.round_trip(u, v1), Cost::new(3 + 9 + 3));
    }

    #[test]
    fn fee_for_unknown_event_rejected() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 1));
        b.user(Point::ORIGIN, Cost::new(5));
        b.fee(EventId(7), 2);
        assert!(matches!(b.build().unwrap_err(), BuildError::UnknownId(_)));
    }

    #[test]
    fn no_fees_means_zero_fee_everywhere() {
        let inst = small_grid_instance();
        for v in inst.event_ids() {
            assert_eq!(inst.fee(v), 0);
            for u in inst.user_ids() {
                assert_eq!(inst.cost_to_event(u, v), inst.cost_uv(u, v));
            }
        }
    }

    #[test]
    fn restrict_candidates_zeroes_outside_mu() {
        let inst = small_grid_instance();
        let sets = vec![vec![EventId(1)], vec![EventId(0), EventId(2)]];
        let restricted = inst.restrict_candidates(&sets);
        assert_eq!(restricted.mu(EventId(0), UserId(0)), 0.0);
        assert!((restricted.mu(EventId(1), UserId(0)) - 0.7).abs() < 1e-6);
        assert!((restricted.mu(EventId(2), UserId(1)) - 0.9).abs() < 1e-6);
        assert_eq!(restricted.mu(EventId(1), UserId(1)), 0.0);
        // geometry and times untouched
        assert_eq!(restricted.cost_vv(EventId(0), EventId(1)), Cost::new(10));
    }

    #[test]
    #[should_panic(expected = "one candidate set per user")]
    fn restrict_candidates_checks_arity() {
        let inst = small_grid_instance();
        let _ = inst.restrict_candidates(&[vec![]]);
    }

    #[test]
    fn total_utility_mass() {
        let inst = small_grid_instance();
        assert!((inst.total_utility_mass() - 2.1).abs() < 1e-5);
    }
}
