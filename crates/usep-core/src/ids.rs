//! Strongly-typed indices for events and users.
//!
//! Both are plain `u32` indices into the corresponding `Vec` of an
//! [`Instance`](crate::Instance). The newtypes exist so that an event index
//! can never be accidentally used to index users (or vice versa) — a class
//! of bug that is otherwise easy to introduce in the tight loops of the
//! planning algorithms.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an event within an [`Instance`](crate::Instance).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EventId(pub u32);

/// Index of a user within an [`Instance`](crate::Instance).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct UserId(pub u32);

impl EventId {
    /// The index as a `usize`, for container indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl UserId {
    /// The index as a `usize`, for container indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for EventId {
    fn from(i: u32) -> Self {
        EventId(i)
    }
}

impl From<u32> for UserId {
    fn from(i: u32) -> Self {
        UserId(i)
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_roundtrip() {
        let id = EventId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(EventId::from(7), id);
        assert_eq!(format!("{id}"), "v7");
        assert_eq!(format!("{id:?}"), "v7");
    }

    #[test]
    fn user_id_roundtrip() {
        let id = UserId(3);
        assert_eq!(id.index(), 3);
        assert_eq!(UserId::from(3), id);
        assert_eq!(format!("{id}"), "u3");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(EventId(1) < EventId(2));
        assert!(UserId(0) < UserId(10));
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&EventId(5)).unwrap();
        assert_eq!(json, "5");
        let back: EventId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, EventId(5));
    }
}
