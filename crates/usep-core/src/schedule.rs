//! Per-user schedules and the incremental-cost computation of Eq. (3).

use crate::cost::Cost;
use crate::ids::{EventId, UserId};
use crate::instance::Instance;
use crate::view::CoreView;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Why an event cannot be inserted into a schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertError {
    /// The event is already in the schedule.
    Duplicate,
    /// The event overlaps a scheduled event in time.
    TimeConflict,
    /// The event fits time-wise but a connecting leg is unreachable
    /// (infinite cost).
    Unreachable,
    /// Inserting would push the schedule's travel cost past the budget.
    OverBudget,
}

impl fmt::Display for InsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InsertError::Duplicate => "event already scheduled",
            InsertError::TimeConflict => "event overlaps the schedule",
            InsertError::Unreachable => "connecting leg is unreachable",
            InsertError::OverBudget => "insertion exceeds the travel budget",
        };
        f.write_str(s)
    }
}

impl Error for InsertError {}

/// A user's schedule `S_u`: arranged events in increasing time order,
/// pairwise non-overlapping.
///
/// The schedule does not store which user it belongs to; methods that need
/// costs take the `(instance, user)` pair explicitly, which keeps the type
/// a plain data container the algorithms can shuffle around freely.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    pub(crate) events: Vec<EventId>,
}

impl Schedule {
    /// The empty schedule.
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Builds a schedule from events already in increasing time order.
    ///
    /// Used by the decomposed algorithms, whose DP/greedy subroutines
    /// construct whole feasible schedules at once. Order and
    /// non-overlap are debug-asserted; call [`Schedule::check`] in tests
    /// for a full audit.
    pub fn from_time_ordered(inst: &Instance, events: Vec<EventId>) -> Schedule {
        debug_assert!(
            events.windows(2).all(|w| inst.event(w[0]).time.precedes(inst.event(w[1]).time)),
            "events not in feasible time order"
        );
        let _ = inst;
        Schedule { events }
    }

    /// Builds a schedule from a raw event list with **no invariant
    /// checks** — the events are taken verbatim, whatever their order,
    /// overlaps or duplicates.
    ///
    /// This is an oracle-facing constructor: external validators and
    /// corruption harnesses (see the `usep-oracle` crate) need to
    /// materialize deliberately *broken* schedules to prove that the
    /// auditors catch them. It must never be used by a solver; feasible
    /// construction goes through [`Schedule::try_insert`] or
    /// [`Schedule::from_time_ordered`].
    pub fn from_events_unchecked(events: Vec<EventId>) -> Schedule {
        Schedule { events }
    }

    /// Number of arranged events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The arranged events, in increasing time order.
    #[inline]
    pub fn events(&self) -> &[EventId] {
        &self.events
    }

    /// Whether `v` is arranged.
    #[inline]
    pub fn contains(&self, v: EventId) -> bool {
        self.events.contains(&v)
    }

    /// The position at which `v` would be inserted, or `None` when `v`
    /// conflicts in time with a scheduled event (or is a duplicate).
    ///
    /// Because the schedule is time-ordered and non-overlapping, the
    /// events that precede `v` form a prefix; `v` fits iff every remaining
    /// event succeeds it, which only the first needs to be checked for.
    /// (One shared implementation lives on [`CoreView`]; solver hot
    /// paths call it on a [`FlatInstance`](crate::FlatInstance), which
    /// replaces the interval scan with conflict-bitmask probes.)
    pub fn insertion_point<V: CoreView + ?Sized>(&self, inst: &V, v: EventId) -> Option<usize> {
        CoreView::insertion_point(inst, &self.events, v)
    }

    /// The incremental travel cost `inc_cost(v, u)` of Eq. (3): the extra
    /// travel incurred if `v` were inserted into this schedule of user
    /// `u`. Returns [`Cost::INFINITE`] when `v` cannot be inserted (time
    /// conflict, duplicate, or an unreachable new leg).
    ///
    /// Under the triangle inequality (validated at instance build) the
    /// increment is non-negative.
    pub fn inc_cost<V: CoreView + ?Sized>(&self, inst: &V, u: UserId, v: EventId) -> Cost {
        let Some(pos) = self.insertion_point(inst, v) else {
            return Cost::INFINITE;
        };
        self.inc_cost_at(inst, u, v, pos)
    }

    /// Eq. (3) with a precomputed insertion point (see
    /// [`Schedule::insertion_point`]); the shared slice implementation
    /// is [`CoreView::inc_cost_at`].
    pub fn inc_cost_at<V: CoreView + ?Sized>(&self, inst: &V, u: UserId, v: EventId, pos: usize) -> Cost {
        CoreView::inc_cost_at(inst, &self.events, u, v, pos)
    }

    /// Total round-trip travel cost of the schedule for user `u`:
    /// `cost(u, v_1) + Σ cost(v_{i-1}, v_i) + cost(v_k, u)`; zero when
    /// empty, infinite when any leg is unreachable.
    pub fn total_cost<V: CoreView + ?Sized>(&self, inst: &V, u: UserId) -> Cost {
        CoreView::total_cost(inst, &self.events, u)
    }

    /// Total utility `Ω(S_u) = Σ_{v ∈ S_u} μ(v, u)`, `-0.0`-normalized
    /// through [`normalize_utility`](crate::normalize_utility).
    pub fn utility<V: CoreView + ?Sized>(&self, inst: &V, u: UserId) -> f64 {
        CoreView::utility(inst, &self.events, u)
    }

    /// Attempts to insert `v`, enforcing time feasibility, leg
    /// reachability and the budget of `u`. Returns the insertion position.
    pub fn try_insert<V: CoreView + ?Sized>(&mut self, inst: &V, u: UserId, v: EventId) -> Result<usize, InsertError> {
        if self.contains(v) {
            return Err(InsertError::Duplicate);
        }
        let Some(pos) = self.insertion_point(inst, v) else {
            return Err(InsertError::TimeConflict);
        };
        let inc = self.inc_cost_at(inst, u, v, pos);
        if inc.is_infinite() {
            return Err(InsertError::Unreachable);
        }
        let new_total = self.total_cost(inst, u).add(inc);
        if new_total > inst.budget(u) {
            return Err(InsertError::OverBudget);
        }
        self.events.insert(pos, v);
        Ok(pos)
    }

    /// Whether `v` could be inserted for user `u` without violating
    /// schedule-level constraints (time, reachability, budget). Does not
    /// check capacity or utility — those live on
    /// [`Planning`](crate::Planning).
    pub fn can_insert<V: CoreView + ?Sized>(&self, inst: &V, u: UserId, v: EventId) -> bool {
        CoreView::can_insert(inst, &self.events, u, v)
    }

    /// Removes `v` if present, returning whether it was.
    ///
    /// Removal keeps the schedule feasible: the merged leg
    /// `prev → next` exists whenever both neighbor legs did (triangle
    /// inequality + temporal transitivity), and the total cost can only
    /// shrink.
    pub fn remove(&mut self, v: EventId) -> bool {
        if let Some(pos) = self.events.iter().position(|&e| e == v) {
            self.events.remove(pos);
            true
        } else {
            false
        }
    }

    /// Renders the schedule as a human-readable itinerary: one line per
    /// event with its time window, venue, utility and the travel leg
    /// reaching it, plus a footer with the return leg, total cost and
    /// utility. Used by the CLI's `plan-user` and the examples.
    pub fn describe(&self, inst: &Instance, u: UserId) -> String {
        use std::fmt::Write as _;
        let user = inst.user(u);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "itinerary of {u} (home {:?}, budget {}):",
            user.location, user.budget
        );
        if self.is_empty() {
            let _ = writeln!(out, "  (stays home)");
            return out;
        }
        let mut prev: Option<EventId> = None;
        for &v in &self.events {
            let e = inst.event(v);
            let leg = match prev {
                None => inst.cost_to_event(u, v),
                Some(p) => inst.cost_vv(p, v),
            };
            let _ = writeln!(
                out,
                "  [{:>6} – {:<6}] {v} @ {:?}  μ = {:.3}  (leg {leg})",
                e.time.start(),
                e.time.end(),
                e.location,
                inst.mu(v, u)
            );
            prev = Some(v);
        }
        let last = *self.events.last().expect("non-empty");
        let _ = writeln!(
            out,
            "  return leg {}; total cost {} of budget {}; Ω(S_u) = {:.3}",
            inst.cost_from_event(last, u),
            self.total_cost(inst, u),
            user.budget,
            self.utility(inst, u)
        );
        out
    }

    /// Full feasibility audit of this schedule for user `u` (time order,
    /// non-overlap, reachable legs, budget, duplicates). Used by tests
    /// and by `Planning::validate`.
    pub fn check(&self, inst: &Instance, u: UserId) -> Result<(), String> {
        for w in self.events.windows(2) {
            if !inst.event(w[0]).time.precedes(inst.event(w[1]).time) {
                return Err(format!("{} does not precede {}", w[0], w[1]));
            }
            if inst.cost_vv(w[0], w[1]).is_infinite() {
                return Err(format!("leg {} → {} unreachable", w[0], w[1]));
            }
        }
        for (i, &a) in self.events.iter().enumerate() {
            for &b in &self.events[i + 1..] {
                if a == b {
                    return Err(format!("duplicate event {a}"));
                }
            }
        }
        let total = self.total_cost(inst, u);
        if total > inst.user(u).budget {
            return Err(format!(
                "total cost {total} exceeds budget {}",
                inst.user(u).budget
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Point;
    use crate::instance::InstanceBuilder;
    use crate::time::TimeInterval;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    /// Four events on a line at x = 0, 10, 20, 30 with consecutive time
    /// slots, one user at x = 5.
    fn line_instance(budget: u32) -> Instance {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::new(0, 0), iv(0, 10));
        b.event(1, Point::new(10, 0), iv(10, 20));
        b.event(1, Point::new(20, 0), iv(20, 30));
        b.event(1, Point::new(30, 0), iv(30, 40));
        let u = b.user(Point::new(5, 0), Cost::new(budget));
        for v in 0..4 {
            b.utility(EventId(v), u, 0.5);
        }
        b.build().unwrap()
    }

    const U: UserId = UserId(0);

    #[test]
    fn inc_cost_empty_schedule_is_round_trip() {
        let inst = line_instance(1000);
        let s = Schedule::new();
        assert_eq!(s.inc_cost(&inst, U, EventId(0)), Cost::new(10));
        assert_eq!(s.inc_cost(&inst, U, EventId(3)), Cost::new(50));
    }

    #[test]
    fn inc_cost_prepend() {
        let inst = line_instance(1000);
        let mut s = Schedule::new();
        s.try_insert(&inst, U, EventId(1)).unwrap();
        // prepend v0: cost(u,v0) + cost(v0,v1) - cost(u,v1) = 5 + 10 - 5 = 10
        assert_eq!(s.inc_cost(&inst, U, EventId(0)), Cost::new(10));
    }

    #[test]
    fn inc_cost_append() {
        let inst = line_instance(1000);
        let mut s = Schedule::new();
        s.try_insert(&inst, U, EventId(1)).unwrap();
        // append v2: cost(v1,v2) + cost(v2,u) - cost(v1,u) = 10 + 15 - 5 = 20
        assert_eq!(s.inc_cost(&inst, U, EventId(2)), Cost::new(20));
    }

    #[test]
    fn inc_cost_middle() {
        let inst = line_instance(1000);
        let mut s = Schedule::new();
        s.try_insert(&inst, U, EventId(0)).unwrap();
        s.try_insert(&inst, U, EventId(2)).unwrap();
        // insert v1 between: cost(v0,v1) + cost(v1,v2) - cost(v0,v2) = 10+10-20 = 0
        assert_eq!(s.inc_cost(&inst, U, EventId(1)), Cost::ZERO);
    }

    #[test]
    fn inc_cost_matches_total_cost_delta() {
        let inst = line_instance(1000);
        let mut s = Schedule::new();
        for v in [EventId(2), EventId(0), EventId(3), EventId(1)] {
            let before = s.total_cost(&inst, U);
            let inc = s.inc_cost(&inst, U, v);
            s.try_insert(&inst, U, v).unwrap();
            assert_eq!(s.total_cost(&inst, U), before.add(inc));
        }
        assert_eq!(s.events(), &[EventId(0), EventId(1), EventId(2), EventId(3)]);
    }

    #[test]
    fn insertion_point_rejects_conflicts_and_duplicates() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 10));
        b.event(1, Point::ORIGIN, iv(5, 15)); // overlaps v0
        b.event(1, Point::ORIGIN, iv(10, 20));
        let u = b.user(Point::ORIGIN, Cost::new(100));
        for v in 0..3 {
            b.utility(EventId(v), u, 0.5);
        }
        let inst = b.build().unwrap();
        let mut s = Schedule::new();
        s.try_insert(&inst, U, EventId(0)).unwrap();
        assert_eq!(s.insertion_point(&inst, EventId(1)), None);
        assert_eq!(s.insertion_point(&inst, EventId(2)), Some(1));
        assert_eq!(s.insertion_point(&inst, EventId(0)), None); // duplicate
        assert_eq!(
            s.clone().try_insert(&inst, U, EventId(1)).unwrap_err(),
            InsertError::TimeConflict
        );
        assert_eq!(
            s.clone().try_insert(&inst, U, EventId(0)).unwrap_err(),
            InsertError::Duplicate
        );
    }

    #[test]
    fn budget_enforced() {
        let inst = line_instance(25);
        let mut s = Schedule::new();
        s.try_insert(&inst, U, EventId(0)).unwrap(); // cost 10
        // adding v1 would make total cost 5 + 10 + 5 = 20 ≤ 25: ok
        s.try_insert(&inst, U, EventId(1)).unwrap();
        // adding v2 would make total 5 + 10 + 10 + 15 = 40 > 25
        assert_eq!(s.try_insert(&inst, U, EventId(2)).unwrap_err(), InsertError::OverBudget);
        assert!(!s.can_insert(&inst, U, EventId(2)));
        assert!(s.check(&inst, U).is_ok());
    }

    #[test]
    fn unreachable_leg_detected() {
        let mut b = InstanceBuilder::new();
        // gap 5, distance 100, travel speed 1 → unreachable in sequence
        b.event(1, Point::new(0, 0), iv(0, 10));
        b.event(1, Point::new(100, 0), iv(15, 25));
        let u = b.user(Point::ORIGIN, Cost::new(10_000));
        b.utility(EventId(0), u, 0.5);
        b.utility(EventId(1), u, 0.5);
        b.travel(crate::instance::TravelCost::Grid { time_per_unit: 1 });
        let inst = b.build().unwrap();
        let mut s = Schedule::new();
        s.try_insert(&inst, U, EventId(0)).unwrap();
        assert!(s.inc_cost(&inst, U, EventId(1)).is_infinite());
        assert_eq!(s.try_insert(&inst, U, EventId(1)).unwrap_err(), InsertError::Unreachable);
    }

    #[test]
    fn remove_keeps_feasibility_and_reduces_cost() {
        let inst = line_instance(1000);
        let mut s = Schedule::new();
        for v in 0..4 {
            s.try_insert(&inst, U, EventId(v)).unwrap();
        }
        let before = s.total_cost(&inst, U);
        assert!(s.remove(EventId(1)));
        assert!(!s.remove(EventId(1)));
        assert!(s.check(&inst, U).is_ok());
        assert!(s.total_cost(&inst, U) <= before);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn utility_sums_mu() {
        let inst = line_instance(1000);
        let mut s = Schedule::new();
        s.try_insert(&inst, U, EventId(0)).unwrap();
        s.try_insert(&inst, U, EventId(2)).unwrap();
        assert!((s.utility(&inst, U) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_schedule_properties() {
        let inst = line_instance(10);
        let s = Schedule::new();
        assert!(s.is_empty());
        assert_eq!(s.total_cost(&inst, U), Cost::ZERO);
        assert_eq!(s.utility(&inst, U), 0.0);
        assert!(s.check(&inst, U).is_ok());
    }

    #[test]
    fn describe_renders_legs_and_totals() {
        let inst = line_instance(1000);
        let mut s = Schedule::new();
        s.try_insert(&inst, U, EventId(0)).unwrap();
        s.try_insert(&inst, U, EventId(1)).unwrap();
        let text = s.describe(&inst, U);
        assert!(text.contains("itinerary of u0"));
        assert!(text.contains("v0"));
        assert!(text.contains("v1"));
        assert!(text.contains("total cost 20"));
        assert!(text.contains("Ω(S_u) = 1.000"));
    }

    #[test]
    fn describe_empty_schedule() {
        let inst = line_instance(10);
        let text = Schedule::new().describe(&inst, U);
        assert!(text.contains("stays home"));
    }

    #[test]
    fn from_time_ordered_roundtrip() {
        let inst = line_instance(1000);
        let s = Schedule::from_time_ordered(&inst, vec![EventId(0), EventId(2)]);
        assert_eq!(s.events(), &[EventId(0), EventId(2)]);
        assert!(s.check(&inst, U).is_ok());
    }
}
