//! Incremental instance patching — the `usep-delta` substrate.
//!
//! An [`Instance`] is immutable by design so its derived structures
//! (event-cost matrix, temporal index, frozen SoA arrays) can never go
//! stale. The delta-solve engine needs the opposite: apply a typed
//! mutation — event add/remove, capacity change, user arrive/depart, μ
//! update — **without** paying the full `assemble()` recomputation
//! (`O(|V|²)` pairwise costs) or a cold [`FlatInstance`](crate::FlatInstance) rebuild
//! (`O(|U||V|)` leg derivations) per mutation.
//!
//! The patch methods below mutate the object arrays in place and then
//! *amend* each derived structure instead of rebuilding it:
//!
//! * **Scalar patches** (`patch_set_capacity`, `patch_set_mu`) touch
//!   one cell of one array; the cost matrices are untouched.
//! * **Structural patches** append at the dense tail
//!   (`patch_add_event`, `patch_add_user`) or swap-remove
//!   (`patch_remove_event`, `patch_remove_user`), so existing dense
//!   indices are stable except for the single moved entity, which the
//!   caller remaps via the returned old index. Only the added entity's
//!   row/column of each cost matrix is derived; everything else is a
//!   strided memcpy.
//! * The frozen [`FlatInstance`](crate::FlatInstance), if one exists,
//!   is amended through the `amend_*` methods in `flat.rs` (same
//!   memcpy-plus-derived-edge discipline) and re-installed, so warm
//!   solvers keep a hot cache across mutations. Amended and cold-built
//!   flats are `PartialEq`-identical by construction — the differential
//!   suites assert it.
//!
//! Structural patches require [`TravelCost::Grid`]: explicit cost
//! matrices carry no generative model to derive a new entity's legs
//! from, so those return [`PatchError::ExplicitTravel`]. Scalar patches
//! work under either travel model.

use super::{Instance, TravelCost};
use crate::cost::Cost;
use crate::event::Event;
use crate::geo::Point;
use crate::ids::{EventId, UserId};
use crate::temporal::TemporalIndex;
use crate::time::TimeInterval;
use crate::user::User;
use std::sync::Arc;

/// Why a patch was refused. Refused patches leave the instance (and its
/// frozen view) exactly as they were.
#[derive(Clone, Debug, PartialEq)]
pub enum PatchError {
    /// The event index is out of range.
    UnknownEvent(EventId),
    /// The user index is out of range.
    UnknownUser(UserId),
    /// Events must hold at least one attendee.
    ZeroCapacity,
    /// `u32::MAX` encodes an infinite cost and is not a valid fee.
    InfiniteFee,
    /// Budgets must be finite.
    InfiniteBudget,
    /// A utility outside `[0, 1]` (or non-finite).
    BadUtility(f64),
    /// A μ row/column of the wrong length.
    MuShape {
        /// Entries required (one per counterpart entity).
        expected: usize,
        /// Entries supplied.
        got: usize,
    },
    /// Structural patches need `TravelCost::Grid` to derive new legs.
    ExplicitTravel,
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::UnknownEvent(v) => write!(f, "unknown event {v}"),
            PatchError::UnknownUser(u) => write!(f, "unknown user {u}"),
            PatchError::ZeroCapacity => write!(f, "capacity must be at least 1"),
            PatchError::InfiniteFee => write!(f, "fee u32::MAX is reserved for infinity"),
            PatchError::InfiniteBudget => write!(f, "budget must be finite"),
            PatchError::BadUtility(x) => write!(f, "utility {x} outside [0, 1]"),
            PatchError::MuShape { expected, got } => {
                write!(f, "utility vector has {got} entries, expected {expected}")
            }
            PatchError::ExplicitTravel => {
                write!(f, "structural patches require grid travel costs")
            }
        }
    }
}

impl std::error::Error for PatchError {}

fn check_mu_values(mu: &[f32]) -> Result<(), PatchError> {
    for &m in mu {
        if !m.is_finite() || !(0.0..=1.0).contains(&m) {
            return Err(PatchError::BadUtility(f64::from(m)));
        }
    }
    Ok(())
}

/// One directed grid event-pair cost — the per-cell core of
/// `compute_event_costs`, used by the add-event patch to derive only
/// the new row and column. Must stay in lockstep with that function;
/// the patch test suite asserts full-matrix equality after every patch.
fn grid_directed_cost(
    events: &[Event],
    time_per_unit: u32,
    fees: &[u32],
    i: usize,
    j: usize,
) -> Cost {
    if i == j || !events[i].time.precedes(events[j].time) {
        return Cost::INFINITE;
    }
    let dist = events[i].location.cost_to(events[j].location);
    let reachable = if time_per_unit == 0 {
        true
    } else if let Some(d) = dist.finite_value() {
        let travel_time = u64::from(d) * u64::from(time_per_unit);
        let gap = events[i].time.gap_before(events[j].time).unwrap_or(0);
        gap >= 0 && travel_time <= gap as u64
    } else {
        false
    };
    if !reachable {
        return Cost::INFINITE;
    }
    let fee = if fees.is_empty() { 0 } else { fees[j] };
    if fee == 0 || fee == u32::MAX || !dist.is_finite() {
        dist
    } else {
        dist.add(Cost::new(fee))
    }
}

impl Instance {
    fn grid_time_per_unit(&self) -> Result<u32, PatchError> {
        match &self.travel {
            TravelCost::Grid { time_per_unit } => Ok(*time_per_unit),
            TravelCost::Explicit { .. } => Err(PatchError::ExplicitTravel),
        }
    }

    /// Reinstalls an amended frozen view derived from `prev` (taken
    /// before the object arrays were mutated).
    fn reinstall_flat(&mut self, amended: Option<crate::flat::FlatInstance>) {
        if let Some(flat) = amended {
            let _ = self.flat.set(Arc::new(flat));
        }
    }

    /// Sets the capacity of event `v` in place. `O(1)` on the object
    /// arrays plus one amended cell in the frozen view.
    pub fn patch_set_capacity(&mut self, v: EventId, capacity: u32) -> Result<(), PatchError> {
        if v.index() >= self.events.len() {
            return Err(PatchError::UnknownEvent(v));
        }
        if capacity == 0 {
            return Err(PatchError::ZeroCapacity);
        }
        let prev = self.flat.take();
        self.events[v.index()].capacity = capacity;
        self.reinstall_flat(prev.map(|p| p.amend_capacity(v, capacity)));
        Ok(())
    }

    /// Sets `μ(v, u)` in place. `O(1)` plus one amended cell in the
    /// frozen view.
    pub fn patch_set_mu(&mut self, v: EventId, u: UserId, value: f64) -> Result<(), PatchError> {
        let nv = self.events.len();
        if v.index() >= nv {
            return Err(PatchError::UnknownEvent(v));
        }
        if u.index() >= self.users.len() {
            return Err(PatchError::UnknownUser(u));
        }
        let val = value as f32;
        if !val.is_finite() || !(0.0..=1.0).contains(&val) {
            return Err(PatchError::BadUtility(value));
        }
        let prev = self.flat.take();
        self.mu[u.index() * nv + v.index()] = val;
        self.reinstall_flat(prev.map(|p| p.amend_mu(v, u, val)));
        Ok(())
    }

    /// Appends a new event at dense index `|V|`, deriving only its μ
    /// column, its row/column of the event-cost matrix, and its legs in
    /// the frozen view. `mu_col[u]` is the new event's utility for user
    /// `u` (dense order). Returns the new event's id.
    pub fn patch_add_event(
        &mut self,
        capacity: u32,
        location: Point,
        time: TimeInterval,
        fee: u32,
        mu_col: &[f32],
    ) -> Result<EventId, PatchError> {
        let time_per_unit = self.grid_time_per_unit()?;
        if capacity == 0 {
            return Err(PatchError::ZeroCapacity);
        }
        if fee == u32::MAX {
            return Err(PatchError::InfiniteFee);
        }
        let nu = self.users.len();
        if mu_col.len() != nu {
            return Err(PatchError::MuShape { expected: nu, got: mu_col.len() });
        }
        check_mu_values(mu_col)?;

        let prev = self.flat.take();
        let old_nv = self.events.len();

        // μ matrix: stride old_nv → old_nv + 1, one derived cell per row
        let mut mu = Vec::with_capacity(nu * (old_nv + 1));
        for (ui, &m) in mu_col.iter().enumerate() {
            mu.extend_from_slice(&self.mu[ui * old_nv..(ui + 1) * old_nv]);
            mu.push(m);
        }
        self.mu = mu;
        self.events.push(Event::new(capacity, location, time));
        if !self.fees.is_empty() {
            self.fees.push(fee);
        } else if fee > 0 {
            let mut f = vec![0u32; old_nv];
            f.push(fee);
            self.fees = f;
        }

        // event-cost matrix: strided copy plus one derived row + column
        let nv = old_nv + 1;
        let mut costs = Vec::with_capacity(nv * nv);
        for i in 0..old_nv {
            costs.extend_from_slice(&self.event_costs[i * old_nv..(i + 1) * old_nv]);
            costs.push(grid_directed_cost(&self.events, time_per_unit, &self.fees, i, old_nv));
        }
        for j in 0..nv {
            costs.push(grid_directed_cost(&self.events, time_per_unit, &self.fees, old_nv, j));
        }
        self.event_costs = costs;
        self.temporal = TemporalIndex::build(&self.events);

        let v = EventId(old_nv as u32);
        let amended = prev.map(|p| p.amend_add_event(self, v));
        self.reinstall_flat(amended);
        Ok(v)
    }

    /// Swap-removes event `v`: the last event moves into `v`'s dense
    /// slot and every matrix is compacted by strided copy (no cost is
    /// recomputed). Returns the **old** dense id of the moved event so
    /// the caller can remap (`None` when `v` was last — a pure pop, the
    /// exact inverse of [`Instance::patch_add_event`]).
    pub fn patch_remove_event(&mut self, v: EventId) -> Result<Option<EventId>, PatchError> {
        let nv = self.events.len();
        if v.index() >= nv {
            return Err(PatchError::UnknownEvent(v));
        }
        self.grid_time_per_unit()?;
        let prev = self.flat.take();
        let last = nv - 1;
        self.events.swap_remove(v.index());
        if !self.fees.is_empty() {
            self.fees.swap_remove(v.index());
            // an all-zero fee vector is semantically identical to the
            // empty one; normalizing keeps add∘remove byte-identical
            if self.fees.iter().all(|&f| f == 0) {
                self.fees = Vec::new();
            }
        }

        let old_col = |j: usize| if j == v.index() { last } else { j };
        let nu = self.users.len();
        let mut mu = Vec::with_capacity(nu * last);
        for ui in 0..nu {
            let row = &self.mu[ui * nv..(ui + 1) * nv];
            for j in 0..last {
                mu.push(row[old_col(j)]);
            }
        }
        self.mu = mu;

        let mut costs = Vec::with_capacity(last * last);
        for i in 0..last {
            let row = &self.event_costs[old_col(i) * nv..(old_col(i) + 1) * nv];
            for j in 0..last {
                costs.push(row[old_col(j)]);
            }
        }
        self.event_costs = costs;
        self.temporal = TemporalIndex::build(&self.events);

        let amended = prev.map(|p| p.amend_remove_event(v));
        self.reinstall_flat(amended);
        Ok(if v.index() == last { None } else { Some(EventId(last as u32)) })
    }

    /// Appends a new user at dense index `|U|`, deriving only their μ
    /// row and leg costs. `mu_row[v]` is the user's utility for event
    /// `v` (dense order). Returns the new user's id.
    pub fn patch_add_user(
        &mut self,
        location: Point,
        budget: Cost,
        mu_row: &[f32],
    ) -> Result<UserId, PatchError> {
        self.grid_time_per_unit()?;
        if budget.is_infinite() {
            return Err(PatchError::InfiniteBudget);
        }
        let nv = self.events.len();
        if mu_row.len() != nv {
            return Err(PatchError::MuShape { expected: nv, got: mu_row.len() });
        }
        check_mu_values(mu_row)?;

        let prev = self.flat.take();
        self.users.push(User::new(location, budget));
        self.mu.extend_from_slice(mu_row);
        let u = UserId(self.users.len() as u32 - 1);
        let amended = prev.map(|p| p.amend_add_user(self, u));
        self.reinstall_flat(amended);
        Ok(u)
    }

    /// Swap-removes user `u` (the last user's row moves into `u`'s
    /// slot). Returns the old dense id of the moved user, or `None`
    /// when `u` was last — the exact inverse of
    /// [`Instance::patch_add_user`].
    pub fn patch_remove_user(&mut self, u: UserId) -> Result<Option<UserId>, PatchError> {
        let nu = self.users.len();
        if u.index() >= nu {
            return Err(PatchError::UnknownUser(u));
        }
        self.grid_time_per_unit()?;
        let prev = self.flat.take();
        let nv = self.events.len();
        let last = nu - 1;
        self.users.swap_remove(u.index());
        if u.index() != last {
            self.mu.copy_within(last * nv..(last + 1) * nv, u.index() * nv);
        }
        self.mu.truncate(last * nv);
        let amended = prev.map(|p| p.amend_remove_user(u));
        self.reinstall_flat(amended);
        Ok(if u.index() == last { None } else { Some(UserId(last as u32)) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatInstance;
    use crate::instance::InstanceBuilder;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn fixture() -> Instance {
        let mut b = InstanceBuilder::new();
        b.event(2, Point::new(0, 0), iv(0, 10));
        b.event(1, Point::new(10, 0), iv(10, 20));
        b.event(3, Point::new(5, 5), iv(5, 15));
        let u0 = b.user(Point::new(1, 1), Cost::new(80));
        let u1 = b.user(Point::new(8, 2), Cost::new(35));
        for v in 0..3 {
            b.utility(EventId(v), u0, 0.1 + 0.2 * f64::from(v));
            b.utility(EventId(v), u1, 0.9 - 0.2 * f64::from(v));
        }
        b.fee(EventId(1), 3);
        b.build().unwrap()
    }

    /// Rebuilds an instance from scratch out of the patched one's raw
    /// parts — the ground truth every patch must match.
    fn shadow(inst: &Instance) -> Instance {
        let mut b = InstanceBuilder::new();
        for e in inst.events() {
            b.event(e.capacity, e.location, e.time);
        }
        for u in inst.users() {
            b.user(u.location, u.budget);
        }
        let nv = inst.num_events();
        let mut mu = Vec::with_capacity(nv * inst.num_users());
        for u in inst.user_ids() {
            mu.extend_from_slice(inst.mu_row(u));
        }
        b.utility_matrix(mu);
        b.travel(inst.travel().clone());
        for (v, &f) in inst.fees().iter().enumerate() {
            b.fee(EventId(v as u32), f);
        }
        b.build().unwrap()
    }

    /// Full equality against the from-scratch rebuild: object arrays,
    /// the derived cost matrix, and the frozen SoA view.
    fn assert_matches_shadow(inst: &Instance) {
        let fresh = shadow(inst);
        assert_eq!(*inst, fresh, "object arrays diverged from a fresh build");
        for i in inst.event_ids() {
            for j in inst.event_ids() {
                assert_eq!(inst.cost_vv(i, j), fresh.cost_vv(i, j), "cost_vv({i}, {j})");
            }
        }
        assert_eq!(inst.temporal().len(), fresh.temporal().len());
        assert_eq!(
            *inst.freeze(),
            FlatInstance::build(&fresh),
            "amended frozen view diverged from a cold build"
        );
    }

    #[test]
    fn scalar_patches_amend_in_place() {
        let mut inst = fixture();
        let _warm = inst.freeze(); // exercise the amendment path
        inst.patch_set_capacity(EventId(1), 7).unwrap();
        assert_eq!(inst.event(EventId(1)).capacity, 7);
        inst.patch_set_mu(EventId(2), UserId(0), 0.42).unwrap();
        assert!((inst.mu(EventId(2), UserId(0)) - 0.42).abs() < 1e-6);
        assert_matches_shadow(&inst);
    }

    #[test]
    fn add_event_derives_only_the_new_row_and_column() {
        let mut inst = fixture();
        let _warm = inst.freeze();
        let v = inst
            .patch_add_event(2, Point::new(3, 9), iv(22, 30), 5, &[0.8, 0.3])
            .unwrap();
        assert_eq!(v, EventId(3));
        assert_eq!(inst.num_events(), 4);
        assert_eq!(inst.fee(v), 5);
        assert!((inst.mu(v, UserId(0)) - 0.8).abs() < 1e-6);
        assert_matches_shadow(&inst);
    }

    #[test]
    fn remove_event_swap_removes_and_reports_the_moved_id() {
        let mut inst = fixture();
        let _warm = inst.freeze();
        // removing a middle event moves the last one into its slot
        let moved = inst.patch_remove_event(EventId(0)).unwrap();
        assert_eq!(moved, Some(EventId(2)));
        assert_eq!(inst.num_events(), 2);
        assert_matches_shadow(&inst);
        // removing the (new) last event is a pure pop
        let moved = inst.patch_remove_event(EventId(1)).unwrap();
        assert_eq!(moved, None);
        assert_matches_shadow(&inst);
    }

    #[test]
    fn add_then_remove_event_restores_the_instance_exactly() {
        // the metamorphic identity the delta engine leans on: append at
        // the tail, remove from the tail → byte-identical instance
        let mut inst = fixture();
        let _warm = inst.freeze();
        let pristine = inst.clone();
        let v = inst
            .patch_add_event(2, Point::new(3, 9), iv(22, 30), 5, &[0.8, 0.3])
            .unwrap();
        assert_ne!(inst, pristine);
        assert_eq!(inst.patch_remove_event(v).unwrap(), None);
        assert_eq!(inst, pristine);
        for i in pristine.event_ids() {
            for j in pristine.event_ids() {
                assert_eq!(inst.cost_vv(i, j), pristine.cost_vv(i, j));
            }
        }
        assert_matches_shadow(&inst);
    }

    #[test]
    fn user_patches_roundtrip() {
        let mut inst = fixture();
        let _warm = inst.freeze();
        let u = inst.patch_add_user(Point::new(2, 7), Cost::new(60), &[0.5, 0.0, 0.9]).unwrap();
        assert_eq!(u, UserId(2));
        assert_matches_shadow(&inst);
        let moved = inst.patch_remove_user(UserId(0)).unwrap();
        assert_eq!(moved, Some(UserId(2)));
        assert_matches_shadow(&inst);
        let moved = inst.patch_remove_user(UserId(1)).unwrap();
        assert_eq!(moved, None);
        assert_matches_shadow(&inst);
    }

    #[test]
    fn patches_without_a_warm_freeze_still_match() {
        let mut inst = fixture();
        inst.patch_add_event(1, Point::new(9, 9), iv(30, 40), 0, &[0.2, 0.2]).unwrap();
        inst.patch_set_capacity(EventId(0), 5).unwrap();
        assert_matches_shadow(&inst); // freeze() builds cold here
    }

    #[test]
    fn invalid_patches_are_refused_and_leave_state_untouched() {
        let mut inst = fixture();
        let before = inst.clone();
        assert_eq!(
            inst.patch_set_capacity(EventId(9), 1).unwrap_err(),
            PatchError::UnknownEvent(EventId(9))
        );
        assert_eq!(inst.patch_set_capacity(EventId(0), 0).unwrap_err(), PatchError::ZeroCapacity);
        assert!(matches!(
            inst.patch_set_mu(EventId(0), UserId(0), 1.5).unwrap_err(),
            PatchError::BadUtility(_)
        ));
        assert!(matches!(
            inst.patch_add_event(1, Point::ORIGIN, iv(0, 1), 0, &[0.1]).unwrap_err(),
            PatchError::MuShape { expected: 2, got: 1 }
        ));
        assert_eq!(
            inst.patch_add_event(1, Point::ORIGIN, iv(0, 1), u32::MAX, &[0.1, 0.1]).unwrap_err(),
            PatchError::InfiniteFee
        );
        assert_eq!(
            inst.patch_add_user(Point::ORIGIN, Cost::INFINITE, &[0.1, 0.1, 0.1]).unwrap_err(),
            PatchError::InfiniteBudget
        );
        assert_eq!(inst, before);
    }

    #[test]
    fn structural_patches_require_grid_travel() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 1));
        b.event(1, Point::ORIGIN, iv(2, 3));
        b.user(Point::ORIGIN, Cost::new(50));
        let inf = Cost::INFINITE;
        b.travel(TravelCost::Explicit {
            user_event: vec![Cost::new(2), Cost::new(3)],
            event_event: vec![inf, Cost::new(4), inf, inf],
        });
        let mut inst = b.build().unwrap();
        assert_eq!(
            inst.patch_add_event(1, Point::ORIGIN, iv(4, 5), 0, &[0.1]).unwrap_err(),
            PatchError::ExplicitTravel
        );
        assert_eq!(inst.patch_remove_event(EventId(0)).unwrap_err(), PatchError::ExplicitTravel);
        // scalar patches still work under explicit travel
        inst.patch_set_capacity(EventId(0), 4).unwrap();
        inst.patch_set_mu(EventId(0), UserId(0), 0.25).unwrap();
        assert_eq!(inst.event(EventId(0)).capacity, 4);
    }
}
