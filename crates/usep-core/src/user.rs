//! Users.

use crate::cost::Cost;
use crate::geo::Point;
use serde::{Deserialize, Serialize};

/// A user: an initial/final location `l_u` and a travel budget `b_u`.
///
/// The user starts their day at `l_u`, travels to the first arranged
/// event, between consecutive events, and back to `l_u` after the last
/// one; the total travel cost must stay within `b_u`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct User {
    /// Home location `l_u` (both origin and final destination).
    pub location: Point,
    /// Travel budget `b_u` (a finite cost).
    pub budget: Cost,
}

impl User {
    /// Creates a user.
    ///
    /// # Panics
    /// Panics if `budget` is infinite — budgets are finite inputs in the
    /// problem statement; use a large finite value for "unconstrained".
    pub fn new(location: Point, budget: Cost) -> User {
        assert!(budget.is_finite(), "user budgets must be finite");
        User { location, budget }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_fields() {
        let u = User::new(Point::new(3, 3), Cost::new(25));
        assert_eq!(u.budget, Cost::new(25));
        assert_eq!(u.location, Point::new(3, 3));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_budget_rejected() {
        let _ = User::new(Point::ORIGIN, Cost::INFINITE);
    }

    #[test]
    fn serde_roundtrip() {
        let u = User::new(Point::new(0, -9), Cost::new(100));
        let json = serde_json::to_string(&u).unwrap();
        let back: User = serde_json::from_str(&json).unwrap();
        assert_eq!(back, u);
    }
}
