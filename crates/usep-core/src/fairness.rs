//! Fairness measures over a planning.
//!
//! `Ω(A)` is a pure sum, so a planning can score well while leaving many
//! users with nothing — the concern that motivates the max-min variant
//! the paper cites (\[29\], bottleneck-aware arrangement). These metrics
//! quantify how evenly a planning spreads utility.

use crate::instance::Instance;
use crate::planning::Planning;
use serde::{Deserialize, Serialize};

/// Distributional fairness metrics of per-user utilities `Ω(S_u)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FairnessStats {
    /// Jain's fairness index `(Σx)² / (n · Σx²)` over **all** users
    /// (1 = perfectly even, `1/n` = one user takes everything;
    /// 0 when nobody is served).
    pub jain_index: f64,
    /// Fraction of users with at least one arranged event.
    pub served_fraction: f64,
    /// Smallest per-user utility among *served* users (0 if none).
    pub min_served: f64,
    /// Median per-user utility among served users.
    pub median_served: f64,
    /// 90th-percentile per-user utility among served users.
    pub p90_served: f64,
}

impl FairnessStats {
    /// Computes fairness metrics for `planning` on `inst`.
    pub fn compute(inst: &Instance, planning: &Planning) -> FairnessStats {
        let n = inst.num_users();
        if n == 0 {
            return FairnessStats {
                jain_index: 0.0,
                served_fraction: 0.0,
                min_served: 0.0,
                median_served: 0.0,
                p90_served: 0.0,
            };
        }
        let utilities: Vec<f64> = inst
            .user_ids()
            .map(|u| planning.schedule(u).utility(inst, u))
            .collect();
        let sum: f64 = utilities.iter().sum();
        let sq: f64 = utilities.iter().map(|x| x * x).sum();
        let jain = if sq > 0.0 { sum * sum / (n as f64 * sq) } else { 0.0 };

        let mut served: Vec<f64> = inst
            .user_ids()
            .filter(|&u| !planning.schedule(u).is_empty())
            .map(|u| planning.schedule(u).utility(inst, u))
            .collect();
        served.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            if served.is_empty() {
                0.0
            } else {
                let idx = ((served.len() - 1) as f64 * p).round() as usize;
                served[idx]
            }
        };
        FairnessStats {
            jain_index: jain,
            served_fraction: served.len() as f64 / n as f64,
            min_served: served.first().copied().unwrap_or(0.0),
            median_served: pct(0.5),
            p90_served: pct(0.9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use crate::geo::Point;
    use crate::ids::{EventId, UserId};
    use crate::instance::InstanceBuilder;
    use crate::time::TimeInterval;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn two_user_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        b.event(2, Point::ORIGIN, iv(0, 10));
        b.event(2, Point::ORIGIN, iv(10, 20));
        let u0 = b.user(Point::ORIGIN, Cost::new(10));
        let u1 = b.user(Point::ORIGIN, Cost::new(10));
        for v in 0..2 {
            b.utility(EventId(v), u0, 0.5);
            b.utility(EventId(v), u1, 0.5);
        }
        b.build().unwrap()
    }

    #[test]
    fn perfectly_even_planning_has_jain_one() {
        let inst = two_user_instance();
        let mut p = Planning::empty(&inst);
        for u in [UserId(0), UserId(1)] {
            p.assign(&inst, u, EventId(0)).unwrap();
        }
        let f = FairnessStats::compute(&inst, &p);
        assert!((f.jain_index - 1.0).abs() < 1e-12);
        assert_eq!(f.served_fraction, 1.0);
        assert!((f.min_served - 0.5).abs() < 1e-6);
    }

    #[test]
    fn one_sided_planning_has_jain_half() {
        let inst = two_user_instance();
        let mut p = Planning::empty(&inst);
        p.assign(&inst, UserId(0), EventId(0)).unwrap();
        p.assign(&inst, UserId(0), EventId(1)).unwrap();
        let f = FairnessStats::compute(&inst, &p);
        // utilities (1.0, 0.0): Jain = 1/n = 0.5
        assert!((f.jain_index - 0.5).abs() < 1e-12);
        assert_eq!(f.served_fraction, 0.5);
    }

    #[test]
    fn empty_planning() {
        let inst = two_user_instance();
        let f = FairnessStats::compute(&inst, &Planning::empty(&inst));
        assert_eq!(f.jain_index, 0.0);
        assert_eq!(f.served_fraction, 0.0);
        assert_eq!(f.min_served, 0.0);
    }

    #[test]
    fn percentiles_among_served() {
        let mut b = InstanceBuilder::new();
        b.event(3, Point::ORIGIN, iv(0, 10));
        for _ in 0..3 {
            b.user(Point::ORIGIN, Cost::new(10));
        }
        for (u, m) in [(0u32, 0.2), (1, 0.4), (2, 0.9)] {
            b.utility(EventId(0), UserId(u), m);
        }
        let inst = b.build().unwrap();
        let mut p = Planning::empty(&inst);
        for u in 0..3 {
            p.assign(&inst, UserId(u), EventId(0)).unwrap();
        }
        let f = FairnessStats::compute(&inst, &p);
        assert!((f.min_served - 0.2).abs() < 1e-6);
        assert!((f.median_served - 0.4).abs() < 1e-6);
        assert!((f.p90_served - 0.9).abs() < 1e-6);
    }
}
