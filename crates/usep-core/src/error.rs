//! Error types for instance construction and planning validation.

use crate::ids::{EventId, UserId};
use std::error::Error;
use std::fmt;

/// Errors rejected by [`InstanceBuilder::build`](crate::InstanceBuilder::build).
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// A time interval had `start >= end`.
    EmptyInterval {
        /// Offending start time.
        start: i64,
        /// Offending end time.
        end: i64,
    },
    /// An event was declared with capacity zero (the paper requires
    /// `c_v ∈ Z_+`).
    ZeroCapacity(EventId),
    /// A utility value was outside `[0, 1]` or not finite.
    BadUtility {
        /// Event of the offending pair.
        event: EventId,
        /// User of the offending pair.
        user: UserId,
        /// The rejected value.
        value: f64,
    },
    /// An explicit cost matrix had the wrong dimensions.
    BadMatrixShape {
        /// Which matrix (`"user_event"` or `"event_event"`).
        which: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
    /// An explicit event-event cost was finite for a pair that is
    /// temporally incompatible (must be `Cost::INFINITE`).
    FiniteCostForConflict(EventId, EventId),
    /// An explicit cost matrix violates the triangle inequality, which the
    /// problem statement assumes (and Eq. (3)'s incremental costs require
    /// to stay non-negative).
    TriangleViolation {
        /// Human-readable description of the violating triple.
        detail: String,
    },
    /// The instance referenced an event or user that was never declared.
    UnknownId(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EmptyInterval { start, end } => {
                write!(f, "empty time interval [{start}, {end}]")
            }
            BuildError::ZeroCapacity(v) => write!(f, "event {v} has capacity 0"),
            BuildError::BadUtility { event, user, value } => {
                write!(f, "utility μ({event}, {user}) = {value} outside [0, 1]")
            }
            BuildError::BadMatrixShape { which, expected, got } => {
                write!(f, "{which} matrix has {got} entries, expected {expected}")
            }
            BuildError::FiniteCostForConflict(a, b) => write!(
                f,
                "finite cost for temporally incompatible pair ({a}, {b}); must be infinite"
            ),
            BuildError::TriangleViolation { detail } => {
                write!(f, "triangle inequality violated: {detail}")
            }
            BuildError::UnknownId(s) => write!(f, "unknown id: {s}"),
        }
    }
}

impl Error for BuildError {}

/// Defects found by [`Instance::validate`](crate::Instance::validate) in
/// an already-assembled instance.
///
/// Construction through [`InstanceBuilder`](crate::InstanceBuilder)
/// rejects these up front, but deserialization (`serde`'s
/// `from = "InstanceData"` path) trusts its input by design, so anything
/// loaded from JSON must be re-checked before solving: the vendored
/// serde maps JSON `null` to `NaN` for floats, accepts `u32::MAX` (the
/// [`Cost::INFINITE`](crate::Cost::INFINITE) sentinel) as a budget, and
/// performs no cross-field checks, all of which can later panic or
/// corrupt a solve if left in.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidateError {
    /// The utility matrix does not have `|U| · |V|` entries.
    UtilityShape {
        /// Expected number of entries.
        expected: usize,
        /// Actual number of entries.
        got: usize,
    },
    /// A utility value is outside `[0, 1]` or not finite (NaN/∞).
    Utility {
        /// Event of the offending pair.
        event: EventId,
        /// User of the offending pair.
        user: UserId,
        /// The rejected value.
        value: f64,
    },
    /// An event has capacity zero (the paper requires `c_v ∈ Z_+`).
    ZeroCapacity(EventId),
    /// An event's time interval has `start >= end`.
    EmptyInterval {
        /// The event.
        event: EventId,
        /// Offending start time.
        start: i64,
        /// Offending end time.
        end: i64,
    },
    /// A user's budget is the `∞` sentinel, which no solver supports
    /// (budgets drive pseudo-polynomial DP table sizes).
    InfiniteBudget(UserId),
    /// The fee vector is neither empty nor `|V|` entries long.
    FeeShape {
        /// Expected number of entries (`|V|`).
        expected: usize,
        /// Actual number of entries.
        got: usize,
    },
    /// An event fee is the `u32::MAX` infinity sentinel (fees are
    /// finite surcharges; an unaffordable event is modeled through
    /// budgets or an infinite travel cost instead).
    InfiniteFee(EventId),
    /// An explicit cost matrix has the wrong dimensions.
    CostShape {
        /// Which matrix (`"user_event"` or `"event_event"`).
        which: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Actual number of entries.
        got: usize,
    },
    /// An explicit event-event cost is finite for a temporally
    /// incompatible pair (must be `∞`).
    FiniteCostForConflict(EventId, EventId),
    /// A sampled cost triple violates the triangle inequality the
    /// problem statement assumes (Eq. (3)'s incremental costs go
    /// negative without it, and schedule insertion would panic).
    TriangleViolation {
        /// Human-readable description of the violating triple.
        detail: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UtilityShape { expected, got } => {
                write!(f, "utility matrix has {got} entries, expected {expected}")
            }
            ValidateError::Utility { event, user, value } => {
                write!(f, "utility μ({event}, {user}) = {value} outside [0, 1] or not finite")
            }
            ValidateError::ZeroCapacity(v) => write!(f, "event {v} has capacity 0"),
            ValidateError::EmptyInterval { event, start, end } => {
                write!(f, "event {event} has empty time interval [{start}, {end}]")
            }
            ValidateError::InfiniteBudget(u) => {
                write!(f, "user {u} has an infinite budget (u32::MAX sentinel)")
            }
            ValidateError::FeeShape { expected, got } => {
                write!(f, "fee vector has {got} entries, expected 0 or {expected}")
            }
            ValidateError::InfiniteFee(v) => {
                write!(f, "event {v} has an infinite fee (u32::MAX sentinel)")
            }
            ValidateError::CostShape { which, expected, got } => {
                write!(f, "{which} matrix has {got} entries, expected {expected}")
            }
            ValidateError::FiniteCostForConflict(a, b) => write!(
                f,
                "finite cost for temporally incompatible pair ({a}, {b}); must be infinite"
            ),
            ValidateError::TriangleViolation { detail } => {
                write!(f, "triangle inequality violated: {detail}")
            }
        }
    }
}

impl Error for ValidateError {}

/// A violated USEP constraint, as reported by
/// [`Planning::validate`](crate::Planning::validate).
#[derive(Clone, Debug, PartialEq)]
pub enum ConstraintViolation {
    /// Constraint 1: an event is assigned to more users than its capacity.
    Capacity {
        /// The overfull event.
        event: EventId,
        /// Number of users it was assigned to.
        assigned: u32,
        /// Its capacity.
        capacity: u32,
    },
    /// Constraint 2: a user's schedule costs more than their budget.
    Budget {
        /// The over-budget user.
        user: UserId,
        /// Total round-trip travel cost of the schedule (`u64::MAX`
        /// stands in for an infinite leg).
        cost: u64,
        /// The user's budget.
        budget: u64,
    },
    /// Constraint 3: a schedule contains overlapping events, an
    /// unreachable leg, or events out of time order.
    Feasibility {
        /// The user with the infeasible schedule.
        user: UserId,
        /// Description of the infeasibility.
        detail: String,
    },
    /// Constraint 4: a user is assigned an event with `μ(v, u) = 0`.
    Utility {
        /// The user.
        user: UserId,
        /// The zero-utility event.
        event: EventId,
    },
    /// A schedule contains the same event twice.
    DuplicateEvent {
        /// The user.
        user: UserId,
        /// The duplicated event.
        event: EventId,
    },
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintViolation::Capacity { event, assigned, capacity } => write!(
                f,
                "capacity violated: {event} assigned to {assigned} users, capacity {capacity}"
            ),
            ConstraintViolation::Budget { user, cost, budget } => {
                write!(f, "budget violated: {user} travels {cost} > budget {budget}")
            }
            ConstraintViolation::Feasibility { user, detail } => {
                write!(f, "infeasible schedule for {user}: {detail}")
            }
            ConstraintViolation::Utility { user, event } => {
                write!(f, "utility constraint violated: μ({event}, {user}) = 0")
            }
            ConstraintViolation::DuplicateEvent { user, event } => {
                write!(f, "{event} appears twice in the schedule of {user}")
            }
        }
    }
}

impl Error for ConstraintViolation {}

/// Errors from incremental planning mutation
/// ([`Planning::assign`](crate::Planning::assign)).
#[derive(Clone, Debug, PartialEq)]
pub enum PlanningError {
    /// The event is already at capacity.
    EventFull(EventId),
    /// The user is not interested in the event (`μ = 0`).
    ZeroUtility(EventId, UserId),
    /// The event cannot be inserted into the user's schedule (time
    /// conflict, unreachable leg, or duplicate).
    Infeasible(EventId, UserId),
    /// Inserting the event would exceed the user's travel budget.
    OverBudget(EventId, UserId),
}

impl fmt::Display for PlanningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanningError::EventFull(v) => write!(f, "{v} is at capacity"),
            PlanningError::ZeroUtility(v, u) => write!(f, "μ({v}, {u}) = 0"),
            PlanningError::Infeasible(v, u) => {
                write!(f, "{v} does not fit the schedule of {u}")
            }
            PlanningError::OverBudget(v, u) => {
                write!(f, "adding {v} exceeds the budget of {u}")
            }
        }
    }
}

impl Error for PlanningError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_error_display() {
        let e = BuildError::ZeroCapacity(EventId(2));
        assert_eq!(e.to_string(), "event v2 has capacity 0");
        let e = BuildError::BadUtility { event: EventId(0), user: UserId(1), value: 1.5 };
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn violation_display() {
        let v = ConstraintViolation::Capacity { event: EventId(3), assigned: 5, capacity: 4 };
        assert!(v.to_string().contains("v3"));
        assert!(v.to_string().contains("capacity 4"));
    }

    #[test]
    fn planning_error_display() {
        let e = PlanningError::OverBudget(EventId(1), UserId(2));
        assert!(e.to_string().contains("budget"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_err<E: Error>(_e: E) {}
        takes_err(BuildError::UnknownId("x".into()));
        takes_err(ConstraintViolation::Utility { user: UserId(0), event: EventId(0) });
        takes_err(PlanningError::EventFull(EventId(0)));
    }
}
