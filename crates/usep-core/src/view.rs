//! [`CoreView`] — the read-only accessor surface the solver hot paths
//! run against.
//!
//! Every schedule-level operation the algorithms perform per candidate
//! pair — the insertion-point scan, Eq. (3)'s incremental cost, the
//! total-cost chain, the utility sum — is written **once** here, as a
//! provided method over a raw `&[EventId]` slice, in terms of a small
//! set of primitive accessors. Two types implement the primitives:
//!
//! * [`Instance`](crate::Instance) — the object path: per-call travel
//!   cost derivation (`Point::cost_to` under grid travel) and interval
//!   comparisons. This is the pre-refactor behaviour, kept alive as the
//!   differential reference.
//! * [`FlatInstance`](crate::FlatInstance) — the structure-of-arrays
//!   path produced by [`Instance::freeze`](crate::Instance::freeze):
//!   contiguous cost/μ arrays plus a per-event time-conflict bitmask,
//!   which overrides [`CoreView::insertion_point`] with word probes.
//!
//! Both implementations are **bit-identical** in every output: the flat
//! path reads precomputed copies of exactly the values the object path
//! derives, and the bitmask encodes exactly the predicate the interval
//! scan evaluates (see `flat.rs`). The `usep-oracle` differential suite
//! and the `prop_flat_feasibility` proptests gate this equivalence.

use crate::cost::Cost;
use crate::ids::{EventId, UserId};

/// Normalizes IEEE-754 `-0.0` to `+0.0`.
///
/// An empty `Iterator::sum::<f64>()` over a rev-folded accumulator can
/// produce `-0.0`; every utility aggregate (Ω, per-schedule utility,
/// marginal gains) passes through this single helper so serialized
/// objectives never leak a sign bit that depends on summation shape.
#[inline]
pub fn normalize_utility(x: f64) -> f64 {
    x + 0.0
}

/// Read-only view of an instance, sufficient for every hot-path
/// schedule operation.
///
/// The provided methods mirror `Schedule`'s operations but take the
/// event slice explicitly, so both `Schedule` (which delegates here)
/// and slice-juggling solver internals share one implementation.
pub trait CoreView {
    /// Number of events `|V|`.
    fn num_events(&self) -> usize;
    /// Number of users `|U|`.
    fn num_users(&self) -> usize;
    /// Utility `μ(v, u) ∈ [0, 1]`.
    fn mu(&self, v: EventId, u: UserId) -> f64;
    /// The utilities of user `u` over all events, indexed by `EventId`.
    fn mu_row(&self, u: UserId) -> &[f32];
    /// Cost of traveling *to* event `v` from home (fee folded in).
    fn cost_to_event(&self, u: UserId, v: EventId) -> Cost;
    /// Cost of traveling home *from* event `v` (no fee).
    fn cost_from_event(&self, v: EventId, u: UserId) -> Cost;
    /// Directed event-to-event cost (target fee folded in), infinite
    /// when the pair is spatio-temporally incompatible.
    fn cost_vv(&self, i: EventId, j: EventId) -> Cost;
    /// Round-trip cost of attending only `v`.
    fn round_trip(&self, u: UserId, v: EventId) -> Cost;
    /// Travel budget of user `u`.
    fn budget(&self, u: UserId) -> Cost;
    /// Capacity of event `v`.
    fn capacity(&self, v: EventId) -> u32;
    /// Start time of event `v`.
    fn event_start(&self, v: EventId) -> i64;
    /// End time of event `v`.
    fn event_end(&self, v: EventId) -> i64;

    /// Whether event `i` ends no later than event `j` starts
    /// (`TimeInterval::precedes` over the flat arrays).
    #[inline]
    fn event_precedes(&self, i: EventId, j: EventId) -> bool {
        self.event_end(i) <= self.event_start(j)
    }

    /// Whether `occupied` (a `⌈|V|/64⌉`-word bitset of scheduled
    /// events) contains an event that conflicts with `v` — duplicate
    /// or time overlap.
    ///
    /// Returns `None` when this view has no conflict bitmask (the
    /// object path); callers then fall back to
    /// [`CoreView::insertion_point`]. [`FlatInstance`](crate::FlatInstance)
    /// overrides this with the `conflict_word & occupied_word` probe.
    #[inline]
    fn occupied_conflicts(&self, occupied: &[u64], v: EventId) -> Option<bool> {
        let _ = (occupied, v);
        None
    }

    /// The position at which `v` would be inserted into the
    /// time-ordered `events`, or `None` when `v` is a duplicate or
    /// time-conflicts with a scheduled event.
    ///
    /// Mirrors `Schedule::insertion_point` exactly: because the
    /// schedule is time-ordered and non-overlapping, the events
    /// preceding `v` form a prefix, and `v` fits iff the first
    /// remaining event succeeds it.
    fn insertion_point(&self, events: &[EventId], v: EventId) -> Option<usize> {
        if events.contains(&v) {
            return None;
        }
        let (sv, ev) = (self.event_start(v), self.event_end(v));
        let pos = events.iter().take_while(|&&m| self.event_end(m) <= sv).count();
        if pos < events.len() && ev > self.event_start(events[pos]) {
            return None;
        }
        Some(pos)
    }

    /// The insertion position of `v` assuming it is already known to be
    /// conflict-free (e.g. after a bitmask probe said so): the length
    /// of the prefix of events preceding `v`.
    #[inline]
    fn insertion_pos_unchecked(&self, events: &[EventId], v: EventId) -> usize {
        let sv = self.event_start(v);
        events.iter().take_while(|&&m| self.event_end(m) <= sv).count()
    }

    /// Eq. (3) with a precomputed insertion point: the extra travel
    /// incurred if `v` were inserted into `events` at `pos` for user
    /// `u`. Mirrors `Schedule::inc_cost_at` exactly.
    fn inc_cost_at(&self, events: &[EventId], u: UserId, v: EventId, pos: usize) -> Cost {
        let n = events.len();
        if n == 0 {
            return self.round_trip(u, v);
        }
        if pos == 0 {
            let first = events[0];
            let new_legs = self.cost_to_event(u, v).add(self.cost_vv(v, first));
            if new_legs.is_infinite() {
                return Cost::INFINITE;
            }
            return new_legs.sub(self.cost_to_event(u, first));
        }
        if pos == n {
            let last = events[n - 1];
            let new_legs = self.cost_vv(last, v).add(self.cost_from_event(v, u));
            if new_legs.is_infinite() {
                return Cost::INFINITE;
            }
            return new_legs.sub(self.cost_from_event(last, u));
        }
        let prev = events[pos - 1];
        let next = events[pos];
        let new_legs = self.cost_vv(prev, v).add(self.cost_vv(v, next));
        if new_legs.is_infinite() {
            return Cost::INFINITE;
        }
        new_legs.sub(self.cost_vv(prev, next))
    }

    /// Eq. (3) without a precomputed position: infinite when `v` cannot
    /// be inserted at all.
    fn inc_cost(&self, events: &[EventId], u: UserId, v: EventId) -> Cost {
        let Some(pos) = self.insertion_point(events, v) else {
            return Cost::INFINITE;
        };
        self.inc_cost_at(events, u, v, pos)
    }

    /// Total round-trip travel cost of the schedule `events` for `u`.
    fn total_cost(&self, events: &[EventId], u: UserId) -> Cost {
        let Some((&first, rest)) = events.split_first() else {
            return Cost::ZERO;
        };
        let mut total = self.cost_to_event(u, first);
        let mut prev = first;
        for &v in rest {
            total = total.add(self.cost_vv(prev, v));
            prev = v;
        }
        total.add(self.cost_from_event(prev, u))
    }

    /// Total utility `Σ_{v ∈ events} μ(v, u)`, `-0.0`-normalized.
    fn utility(&self, events: &[EventId], u: UserId) -> f64 {
        normalize_utility(events.iter().map(|&v| self.mu(v, u)).sum::<f64>())
    }

    /// Whether `v` could be inserted into `events` for `u` without
    /// violating schedule-level constraints (time, reachability,
    /// budget). Mirrors `Schedule::can_insert`.
    fn can_insert(&self, events: &[EventId], u: UserId, v: EventId) -> bool {
        let Some(pos) = self.insertion_point(events, v) else {
            return false;
        };
        let inc = self.inc_cost_at(events, u, v, pos);
        if inc.is_infinite() {
            return false;
        }
        self.total_cost(events, u).add(inc) <= self.budget(u)
    }
}

impl CoreView for crate::instance::Instance {
    #[inline]
    fn num_events(&self) -> usize {
        crate::instance::Instance::num_events(self)
    }
    #[inline]
    fn num_users(&self) -> usize {
        crate::instance::Instance::num_users(self)
    }
    #[inline]
    fn mu(&self, v: EventId, u: UserId) -> f64 {
        crate::instance::Instance::mu(self, v, u)
    }
    #[inline]
    fn mu_row(&self, u: UserId) -> &[f32] {
        crate::instance::Instance::mu_row(self, u)
    }
    #[inline]
    fn cost_to_event(&self, u: UserId, v: EventId) -> Cost {
        crate::instance::Instance::cost_to_event(self, u, v)
    }
    #[inline]
    fn cost_from_event(&self, v: EventId, u: UserId) -> Cost {
        crate::instance::Instance::cost_from_event(self, v, u)
    }
    #[inline]
    fn cost_vv(&self, i: EventId, j: EventId) -> Cost {
        crate::instance::Instance::cost_vv(self, i, j)
    }
    #[inline]
    fn round_trip(&self, u: UserId, v: EventId) -> Cost {
        crate::instance::Instance::round_trip(self, u, v)
    }
    #[inline]
    fn budget(&self, u: UserId) -> Cost {
        self.user(u).budget
    }
    #[inline]
    fn capacity(&self, v: EventId) -> u32 {
        self.event(v).capacity
    }
    #[inline]
    fn event_start(&self, v: EventId) -> i64 {
        self.event(v).time.start()
    }
    #[inline]
    fn event_end(&self, v: EventId) -> i64 {
        self.event(v).time.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Point;
    use crate::instance::InstanceBuilder;
    use crate::schedule::Schedule;
    use crate::time::TimeInterval;

    #[test]
    fn normalize_utility_pins_negative_zero() {
        let z = normalize_utility(-0.0);
        assert_eq!(z, 0.0);
        assert!(z.is_sign_positive(), "-0.0 must normalize to +0.0");
        // non-zero values pass through untouched
        assert_eq!(normalize_utility(1.25), 1.25);
        assert_eq!(normalize_utility(-1.25), -1.25);
    }

    #[test]
    fn instance_view_matches_schedule_ops() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::new(0, 0), TimeInterval::new(0, 10).unwrap());
        b.event(1, Point::new(10, 0), TimeInterval::new(10, 20).unwrap());
        b.event(1, Point::new(20, 0), TimeInterval::new(20, 30).unwrap());
        let u = b.user(Point::new(5, 0), crate::cost::Cost::new(100));
        for v in 0..3 {
            b.utility(EventId(v), u, 0.5);
        }
        let inst = b.build().unwrap();
        let mut s = Schedule::new();
        s.try_insert(&inst, u, EventId(0)).unwrap();
        s.try_insert(&inst, u, EventId(2)).unwrap();
        for v in 0..3u32 {
            let v = EventId(v);
            assert_eq!(
                CoreView::insertion_point(&inst, s.events(), v),
                s.insertion_point(&inst, v)
            );
            assert_eq!(CoreView::inc_cost(&inst, s.events(), u, v), s.inc_cost(&inst, u, v));
            assert_eq!(CoreView::can_insert(&inst, s.events(), u, v), s.can_insert(&inst, u, v));
        }
        assert_eq!(CoreView::total_cost(&inst, s.events(), u), s.total_cost(&inst, u));
        assert_eq!(CoreView::utility(&inst, s.events(), u), s.utility(&inst, u));
    }
}
