//! Events.

use crate::geo::Point;
use crate::time::TimeInterval;
use serde::{Deserialize, Serialize};

/// A social event: a capacity `c_v`, a venue location `l_v` and a time
/// interval `[t1_v, t2_v]`.
///
/// The paper allows effectively-uncapacitated events (firework shows) by
/// setting `c_v` very large; the algorithms clamp `c_v` to `|U|`
/// internally, so `u32::MAX` works fine as "unbounded".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Maximum number of attendees `c_v ≥ 1`.
    pub capacity: u32,
    /// Venue location `l_v`.
    pub location: Point,
    /// The event's time interval `[t1_v, t2_v]`.
    pub time: TimeInterval,
}

impl Event {
    /// Creates an event.
    pub fn new(capacity: u32, location: Point, time: TimeInterval) -> Event {
        Event { capacity, location, time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_fields() {
        let e = Event::new(3, Point::new(1, 2), TimeInterval::new(10, 20).unwrap());
        assert_eq!(e.capacity, 3);
        assert_eq!(e.location, Point::new(1, 2));
        assert_eq!(e.time.duration(), 10);
    }

    #[test]
    fn serde_roundtrip() {
        let e = Event::new(5, Point::new(-1, 4), TimeInterval::new(0, 60).unwrap());
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
