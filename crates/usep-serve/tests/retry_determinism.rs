//! Determinism of the serve retry path (`solve_with_retry`), in-process.
//!
//! The serve path must be a pure function of (request, limits): the
//! planning bytes, the reported Ω, the executed tier and the full
//! trace-counter snapshot may not depend on the worker thread count or
//! on how often the request is replayed. This is what makes the
//! journal's crash/resume story sound — a resumed request re-solves to
//! the byte-identical response the dead server would have journaled.

use std::sync::Mutex;
use std::time::Duration;
use usep_gen::{generate, SyntheticConfig};
use usep_serve::{solve_with_retry, RetryPolicy, SolveLimits, SolveRequest, Status};
use usep_trace::{Counter, TraceSink};

/// Serializes tests that flip the process-global thread override.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    usep_par::set_threads(n);
    let r = f();
    usep_par::set_threads(0);
    r
}

fn request(seed: u64) -> SolveRequest {
    let inst = generate(
        &SyntheticConfig::tiny().with_events(12).with_users(20).with_capacity_mean(3),
        seed,
    );
    SolveRequest {
        id: format!("det-{seed}"),
        instance: std::sync::Arc::new(inst),
        algorithm: None,
        timeout_ms: None,
        mem_budget_mb: None,
        city: None,
    }
}

type Snapshot = (Option<usep_core::Planning>, f64, u64, u64, Vec<(Counter, u64)>);

fn run(req: &SolveRequest, limits: &SolveLimits, threads: usize) -> Snapshot {
    at_threads(threads, || {
        let sink = TraceSink::new();
        let resp = solve_with_retry(req, limits, &sink);
        (resp.planning, resp.omega, resp.assignments, resp.retries, sink.counters())
    })
}

#[test]
fn serve_path_identical_at_1_and_4_threads_on_50_seeds() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let limits = SolveLimits::default();
    for seed in 0..50u64 {
        let req = request(seed);
        let a = run(&req, &limits, 1);
        let b = run(&req, &limits, 4);
        assert_eq!(a.0, b.0, "seed {seed}: planning differs across thread counts");
        assert!(a.1 == b.1, "seed {seed}: omega {} != {}", a.1, b.1);
        assert_eq!(a.2, b.2, "seed {seed}: assignment count differs");
        assert_eq!(a.3, b.3, "seed {seed}: retry count differs");
        assert_eq!(a.4, b.4, "seed {seed}: trace-counter snapshot differs");
    }
}

#[test]
fn retry_chain_replays_byte_identically() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    // a chaos trip forces every tier down the degradation chain, so the
    // retry/backoff path actually executes; zero backoff keeps it fast
    let limits = SolveLimits {
        chaos_trip: Some(40),
        retry: RetryPolicy { base: Duration::ZERO, cap: Duration::ZERO },
        ..SolveLimits::default()
    };
    for seed in [3u64, 7, 13] {
        let req = request(seed);
        let a = run(&req, &limits, 1);
        let b = run(&req, &limits, 1);
        assert_eq!(a.0, b.0, "seed {seed}: replayed planning differs");
        assert!(a.1 == b.1, "seed {seed}: replayed omega differs");
        assert_eq!(a.3, b.3, "seed {seed}: replayed retry count differs");
        assert_eq!(a.4, b.4, "seed {seed}: replayed counter snapshot differs");
    }
}

#[test]
fn retry_chain_is_exercised_and_counted() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let limits = SolveLimits {
        chaos_trip: Some(40),
        retry: RetryPolicy { base: Duration::ZERO, cap: Duration::ZERO },
        ..SolveLimits::default()
    };
    // DeDP has the full three-tier chain (DeDP → DeDPO → RatioGreedy)
    let req = SolveRequest { algorithm: Some("dedp".to_string()), ..request(5) };
    let sink = TraceSink::new();
    let resp = at_threads(1, || solve_with_retry(&req, &limits, &sink));
    // every tier tripped on the memory-ceiling chaos, so the chain ran
    // to its end: two retries (three tiers) and a truncated status
    assert_eq!(resp.retries, 2, "expected the full degradation chain");
    assert_eq!(sink.counter(Counter::ServeRetry), 2);
    assert!(matches!(resp.status, Status::Truncated { .. }), "{:?}", resp.status);
    // the best-so-far planning is still constraint-valid
    let planning = resp.planning.expect("truncated responses carry the best planning");
    planning.validate(&req.instance).unwrap();
}
