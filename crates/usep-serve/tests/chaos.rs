//! The chaos gauntlet: 100 concurrent requests against a server with
//! both fault injectors armed — every solve's guard trips its memory
//! ceiling mid-solve (forcing the retry/degradation path) and every
//! Nth solve panics inside the fence. The server must survive all of
//! it: zero crashes, a typed response for every request, and every
//! returned planning constraint-valid for its instance.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use usep_core::Instance;
use usep_gen::{generate, SyntheticConfig};
use usep_serve::{send_request, ServeConfig, Server, SolveRequest, Status};
use usep_trace::Counter;

fn instance(seed: u64) -> Instance {
    generate(&SyntheticConfig::tiny().with_events(5).with_users(20).with_capacity_mean(4), seed)
}

#[test]
fn hundred_requests_under_chaos_all_get_typed_responses() {
    const REQUESTS: usize = 100;
    const CLIENTS: usize = 8;

    let cfg = ServeConfig {
        workers: 4,
        // small queue so concurrency also exercises the shedding path
        queue_capacity: 6,
        // trip every solve's guard once it reaches checkpoint 40,
        // with the memory-ceiling reason the retry loop acts on
        chaos_trip: Some(40),
        // panic inside the fence on every 7th solve
        chaos_panic_every: Some(7),
        // keep injected backoff waits from dominating the test
        retry: usep_serve::RetryPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
        },
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    let next = Arc::new(AtomicUsize::new(0));
    let mut tallies: Vec<(usize, usize, usize, usize)> = Vec::new(); // (complete, truncated, failed, overloaded)
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..CLIENTS {
            let next = Arc::clone(&next);
            handles.push(scope.spawn(move || {
                let (mut complete, mut truncated, mut failed, mut overloaded) = (0, 0, 0, 0);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= REQUESTS {
                        break;
                    }
                    let req = SolveRequest {
                        id: format!("chaos-{i}"),
                        instance: std::sync::Arc::new(instance(1000 + i as u64)),
                        algorithm: None,
                        timeout_ms: Some(10_000),
                        mem_budget_mb: None,
                        city: None,
                    };
                    // every request must get exactly one typed response
                    let resp = send_request(addr, &req, Duration::from_secs(60))
                        .unwrap_or_else(|e| panic!("request chaos-{i} got no response: {e}"));
                    assert_eq!(resp.id, format!("chaos-{i}"));
                    match &resp.status {
                        Status::Complete => complete += 1,
                        Status::Truncated { reason } => {
                            assert_eq!(reason, "memory_ceiling", "{resp:?}");
                            truncated += 1;
                        }
                        Status::Failed { panic } => {
                            assert!(panic.contains("chaos"), "unexpected panic text: {panic}");
                            failed += 1;
                        }
                        Status::Overloaded { .. } => overloaded += 1,
                        Status::Rejected { error } => {
                            panic!("well-formed request rejected: {error}")
                        }
                    }
                    // any planning that came back must hold for its instance
                    if let Some(p) = &resp.planning {
                        p.validate(&req.instance).unwrap();
                    }
                }
                (complete, truncated, failed, overloaded)
            }));
        }
        for h in handles {
            tallies.push(h.join().expect("client thread must not die"));
        }
    });

    let complete: usize = tallies.iter().map(|t| t.0).sum();
    let truncated: usize = tallies.iter().map(|t| t.1).sum();
    let failed: usize = tallies.iter().map(|t| t.2).sum();
    let overloaded: usize = tallies.iter().map(|t| t.3).sum();
    assert_eq!(complete + truncated + failed + overloaded, REQUESTS);

    // with the trip armed at checkpoint 40 every tier truncates, so no
    // solve completes; the panic injector fires on ~1/7 of solves
    assert_eq!(complete, 0, "chaos trip should cut every solve short");
    assert!(truncated > 0, "the degradation path must produce truncated responses");
    assert!(failed > 0, "the panic injector fires on every 7th solve");
    assert_eq!(
        server.counter(Counter::ServePanic),
        failed as u64,
        "every contained panic is counted"
    );
    assert!(
        server.counter(Counter::ServeRetry) >= truncated as u64,
        "each truncated response walked at least one retry tier"
    );
    assert_eq!(
        server.counter(Counter::ServeShed),
        overloaded as u64,
        "sheds and Overloaded responses must agree"
    );

    // the server is still alive and serving after the gauntlet: with no
    // contention left, a clean non-panic-seq request drains normally
    let mut survived = false;
    for k in 0..8 {
        let req = SolveRequest {
            id: format!("aftermath-{k}"),
            instance: std::sync::Arc::new(instance(9000 + k)),
            algorithm: None,
            timeout_ms: Some(10_000),
            mem_budget_mb: None,
            city: None,
        };
        let resp = send_request(addr, &req, Duration::from_secs(60)).unwrap();
        // chaos is still armed, so the response is Truncated or Failed —
        // but it is a *response*, from a server that did not crash
        if matches!(resp.status, Status::Truncated { .. }) {
            survived = true;
        }
    }
    assert!(survived, "server must keep producing plannings after 100 chaos requests");

    server.shutdown();
    server.wait();
}
