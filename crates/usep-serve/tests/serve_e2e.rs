//! End-to-end serve tests over real sockets: clean solves, typed
//! rejections, load shedding, idempotent replay, and journal resume.

use std::time::Duration;
use usep_core::Instance;
use usep_gen::{generate, SyntheticConfig};
use usep_serve::{
    send_request, Journal, JournalRecord, JournalState, ServeConfig, Server, SolveRequest,
    SolveResponse, Status,
};
use usep_trace::Counter;

fn instance(seed: u64) -> Instance {
    generate(&SyntheticConfig::tiny().with_events(6).with_users(24).with_capacity_mean(4), seed)
}

fn request(id: &str, seed: u64) -> SolveRequest {
    SolveRequest {
        id: id.to_string(),
        instance: std::sync::Arc::new(instance(seed)),
        algorithm: None,
        timeout_ms: None,
        mem_budget_mb: None,
        city: None,
    }
}

const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("usep_serve_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn solves_end_to_end_and_replays_duplicates_from_cache() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr();

    let req = request("job-1", 7);
    let first = send_request(addr, &req, CLIENT_TIMEOUT).unwrap();
    assert_eq!(first.status, Status::Complete, "{first:?}");
    assert_eq!(first.id, "job-1");
    assert!(first.omega > 0.0);
    let planning = first.planning.as_ref().expect("complete responses carry the planning");
    planning.validate(&req.instance).unwrap();
    assert_eq!(first.executed.as_deref(), Some("DeDPO"));

    // same id again: answered from the completion cache, not re-solved
    let again = send_request(addr, &req, CLIENT_TIMEOUT).unwrap();
    assert_eq!(again.status, Status::Complete);
    assert_eq!(again.omega, first.omega);
    assert_eq!(server.counter(Counter::ServeReplay), 1);
    assert_eq!(server.counter(Counter::ServeAccept), 1);

    server.shutdown();
    server.wait();
}

#[test]
fn malformed_unknown_and_invalid_requests_are_rejected_not_fatal() {
    use std::io::{BufRead, BufReader, Write};

    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr();

    // raw garbage line → typed Rejected, connection stays usable
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).unwrap();
    writeln!(stream, "this is not json").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let resp: SolveResponse = serde_json::from_str(line.trim_end()).unwrap();
    assert!(matches!(resp.status, Status::Rejected { .. }), "{resp:?}");

    // unknown algorithm on the same connection
    let mut bad_algo = request("job-2", 8);
    bad_algo.algorithm = Some("quantum-annealing".to_string());
    writeln!(stream, "{}", serde_json::to_string(&bad_algo).unwrap()).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let resp: SolveResponse = serde_json::from_str(line.trim_end()).unwrap();
    match &resp.status {
        Status::Rejected { error } => assert!(error.contains("quantum-annealing")),
        other => panic!("expected Rejected, got {other:?}"),
    }

    // a good request still works after both rejections
    let ok = send_request(addr, &request("job-3", 9), CLIENT_TIMEOUT).unwrap();
    assert_eq!(ok.status, Status::Complete);

    server.shutdown();
    server.wait();
}

#[test]
fn zero_capacity_queue_sheds_with_overloaded() {
    let cfg = ServeConfig { queue_capacity: 0, ..ServeConfig::default() };
    let server = Server::start(cfg).unwrap();
    let resp = send_request(server.addr(), &request("job-4", 10), CLIENT_TIMEOUT).unwrap();
    assert!(matches!(resp.status, Status::Overloaded { .. }), "{resp:?}");
    assert_eq!(server.counter(Counter::ServeShed), 1);
    assert_eq!(server.counter(Counter::ServeAccept), 0);
    server.shutdown();
    server.wait();
}

#[test]
fn memory_ledger_sheds_oversized_requests_without_stickiness() {
    // ledger smaller than the estimate of a 6×24 instance (≈ 2.6 KB)
    let cfg = ServeConfig { max_reserved_bytes: 1024, ..ServeConfig::default() };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    let resp = send_request(addr, &request("big", 11), CLIENT_TIMEOUT).unwrap();
    assert!(matches!(resp.status, Status::Overloaded { .. }), "{resp:?}");

    // a tiny instance still fits afterwards: refusals are per-request
    let tiny = SolveRequest {
        id: "small".to_string(),
        instance: std::sync::Arc::new(generate(
            &SyntheticConfig::tiny().with_events(2).with_users(3).with_capacity_mean(2),
            12,
        )),
        algorithm: None,
        timeout_ms: None,
        mem_budget_mb: None,
        city: None,
    };
    let resp = send_request(addr, &tiny, CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, Status::Complete, "{resp:?}");

    server.shutdown();
    server.wait();
}

#[test]
fn resume_drains_journaled_pending_requests_without_a_client() {
    let dir = tempdir("resume");
    let wal = dir.join("wal.jsonl");

    // a dead server's journal: two accepted, one of them completed
    let journal = Journal::open(&wal).unwrap();
    journal.append(&JournalRecord::Accepted { request: request("done", 20) }).unwrap();
    journal
        .append(&JournalRecord::Completed {
            response: SolveResponse::bare("done", Status::Complete),
        })
        .unwrap();
    journal.append(&JournalRecord::Accepted { request: request("owed", 21) }).unwrap();
    drop(journal);

    let cfg = ServeConfig {
        journal: Some(wal.clone()),
        resume: true,
        max_requests: Some(1), // drain the one owed solve, then stop
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    assert_eq!(server.resumed(), 1, "only the incomplete accept is re-enqueued");
    server.wait(); // exits via max_requests once the owed solve lands

    let state = JournalState::replay(&wal).unwrap();
    assert!(state.pending.is_empty(), "no accepted request may stay owed");
    assert_eq!(state.completed.len(), 2);
    let owed = &state.completed["owed"];
    assert_eq!(owed.status, Status::Complete, "{owed:?}");
    owed.planning.as_ref().unwrap().validate(&instance(21)).unwrap();

    // replaying the drained journal again re-enqueues nothing
    let cfg = ServeConfig {
        journal: Some(wal.clone()),
        resume: true,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    assert_eq!(server.resumed(), 0);

    // and a duplicate of a journal-completed id answers from the cache
    let resp = send_request(server.addr(), &request("owed", 21), CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, Status::Complete);
    assert_eq!(server.counter(Counter::ServeReplay), 1);
    server.shutdown();
    server.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn server_side_caps_bound_client_budgets() {
    // the server caps a huge requested timeout at its own max; with a
    // 0ms server cap every tier's budget is exhausted immediately
    let cfg = ServeConfig { max_timeout_ms: 0, ..ServeConfig::default() };
    let server = Server::start(cfg).unwrap();
    let mut req = request("greedy-client", 30);
    req.timeout_ms = Some(86_400_000);
    let resp = send_request(server.addr(), &req, CLIENT_TIMEOUT).unwrap();
    match &resp.status {
        Status::Truncated { reason } => assert_eq!(reason, "deadline"),
        other => panic!("expected deadline truncation, got {other:?}"),
    }
    // even a zero-budget response carries a (possibly empty) valid planning
    resp.planning.as_ref().unwrap().validate(&req.instance).unwrap();
    server.shutdown();
    server.wait();
}
