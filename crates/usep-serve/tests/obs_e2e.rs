//! End-to-end observability-plane tests: the `/metrics` listener, the
//! ledger between metrics and the journal, request-scoped ids on every
//! artifact, per-phase timings, and the flight-recorder `dump` verb.

use std::io::{BufRead, BufReader, Write};
use std::time::Duration;
use usep_core::Instance;
use usep_gen::{generate, SyntheticConfig};
use usep_obs::http;
use usep_obs::top::parse_exposition;
use usep_serve::{send_request, ServeConfig, Server, SolveRequest, Status};
use usep_trace::Counter;

fn instance(seed: u64) -> Instance {
    generate(&SyntheticConfig::tiny().with_events(6).with_users(24).with_capacity_mean(4), seed)
}

fn request(id: &str, seed: u64) -> SolveRequest {
    SolveRequest {
        id: id.to_string(),
        instance: std::sync::Arc::new(instance(seed)),
        algorithm: None,
        timeout_ms: None,
        mem_budget_mb: None,
        city: None,
    }
}

const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(10);

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("usep_obs_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn metrics_journal_and_flight_recorder_tell_one_story() {
    let dir = tempdir("story");
    let journal_path = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal_path);

    let cfg = ServeConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        journal: Some(journal_path.clone()),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();
    let maddr = server.metrics_addr().expect("metrics listener configured").to_string();

    // -- traffic: solves, a duplicate, and a rejected line -----------
    let ids = ["obs-1", "obs-2", "obs-3", "obs-4"];
    for (i, id) in ids.iter().enumerate() {
        let resp = send_request(addr, &request(id, 40 + i as u64), CLIENT_TIMEOUT).unwrap();
        assert_eq!(resp.status, Status::Complete, "{resp:?}");
        assert_eq!(resp.id, *id, "response echoes the request id");
        let t = resp.timings.expect("queued responses carry phase timings");
        assert!(t.solve_ms > 0.0, "solve phase was timed: {t:?}");
        assert!(t.queue_wait_ms >= 0.0 && t.admission_ms >= 0.0);
    }
    // duplicate → replay from cache
    let again = send_request(addr, &request("obs-1", 40), CLIENT_TIMEOUT).unwrap();
    assert_eq!(again.status, Status::Complete);

    // one garbage line → rejected
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    writeln!(stream, "not json at all").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("Rejected"), "{line}");

    // -- scrape ------------------------------------------------------
    let text = http::get(&maddr, "/metrics", SCRAPE_TIMEOUT).unwrap();

    // exposition hygiene: HELP/TYPE lines and the _total discipline
    assert!(text.contains("# HELP usep_serve_requests_total"));
    assert!(text.contains("# TYPE usep_serve_requests_total counter"));
    assert!(text.contains("# TYPE usep_serve_solve_ms histogram"));

    // every workspace trace counter is a labelled series (satellite:
    // serve_* counters registered in the metrics registry)
    for c in Counter::ALL {
        let needle = format!("usep_trace_events_total{{counter=\"{}\"}}", c.name());
        assert!(text.contains(&needle), "missing {needle}");
    }

    let scrape = parse_exposition(&text);
    let accepted = scrape.value("usep_serve_accepted_total").unwrap();
    let completed = scrape.family_sum("usep_serve_completed_total");
    let failed = scrape.family_sum("usep_serve_failed_total");
    let shed = scrape.family_sum("usep_serve_shed_total");
    let inflight = scrape.value("usep_serve_inflight").unwrap();
    let requests = scrape.value("usep_serve_requests_total").unwrap();
    let rejected = scrape.value("usep_serve_rejected_total").unwrap();
    let replayed = scrape.value("usep_serve_replayed_total").unwrap();

    // the ledger reconciles: everything admitted is accounted for
    assert_eq!(accepted, ids.len() as f64);
    assert_eq!(inflight, 0.0, "traffic drained before the scrape");
    assert_eq!(accepted, completed + failed + inflight);
    assert_eq!(requests, accepted + rejected + shed + replayed);
    assert_eq!(rejected, 1.0);
    assert_eq!(replayed, 1.0);

    // the solve histogram saw exactly the accepted jobs
    assert_eq!(scrape.value("usep_serve_solve_ms_count"), Some(ids.len() as f64));

    // -- sibling routes ----------------------------------------------
    assert_eq!(http::get(&maddr, "/healthz", SCRAPE_TIMEOUT).unwrap(), "ok\n");
    let build = http::get(&maddr, "/buildinfo", SCRAPE_TIMEOUT).unwrap();
    assert!(build.contains("\"service\":\"usep-serve\""), "{build}");

    // -- the dump verb on the solve socket ---------------------------
    line.clear();
    writeln!(stream, "{{\"verb\":\"dump\"}}").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"type\":\"flight_recorder\""), "{line}");
    for id in ids {
        assert!(line.contains(id), "flight dump is missing request {id}: {line}");
    }
    // the same dump is served over HTTP
    let dump = http::get(&maddr, "/flightrec", SCRAPE_TIMEOUT).unwrap();
    assert!(dump.contains("obs-1"));

    server.shutdown();
    server.wait();

    // -- journal ↔ flight-recorder cross-check -----------------------
    // Every journal record names a request id that the flight recorder
    // also saw (admit + done events for each accepted id).
    let journal = std::fs::read_to_string(&journal_path).unwrap();
    assert!(!journal.trim().is_empty());
    for id in ids {
        assert!(journal.contains(id), "journal is missing {id}");
        assert!(line.contains(id), "flight dump is missing journaled id {id}");
    }

    // after shutdown the metrics listener is gone
    assert!(http::get(&maddr, "/healthz", Duration::from_millis(500)).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reconciliation_holds_under_chaos_panics() {
    let cfg = ServeConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        chaos_panic_every: Some(3), // every 3rd solve dies at the fence
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();
    let maddr = server.metrics_addr().unwrap().to_string();

    let mut failures = 0;
    for i in 0..9 {
        let resp =
            send_request(addr, &request(&format!("chaos-{i}"), 100 + i), CLIENT_TIMEOUT).unwrap();
        match resp.status {
            Status::Complete => {}
            Status::Failed { .. } => failures += 1,
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert!(failures > 0, "chaos injected no failures");

    let scrape = parse_exposition(&http::get(&maddr, "/metrics", SCRAPE_TIMEOUT).unwrap());
    let accepted = scrape.value("usep_serve_accepted_total").unwrap();
    let completed = scrape.family_sum("usep_serve_completed_total");
    let failed = scrape.family_sum("usep_serve_failed_total");
    let inflight = scrape.value("usep_serve_inflight").unwrap();
    assert_eq!(accepted, 9.0);
    assert_eq!(failed, f64::from(failures));
    assert_eq!(accepted, completed + failed + inflight);
    let by_reason = scrape.by_label("usep_serve_failed_total", "reason");
    let of = |r: &str| by_reason.iter().find(|(k, _)| k == r).map(|&(_, v)| v);
    assert_eq!(of("panic"), Some(f64::from(failures)), "{by_reason:?}");
    assert_eq!(of("infeasible"), Some(0.0), "only the panic reason fired");

    // the flight recorder kept the panic events, scoped to their ids
    let dump = http::get(&maddr, "/flightrec", SCRAPE_TIMEOUT).unwrap();
    assert!(dump.contains("\"kind\":\"panic\""), "{dump}");
    assert!(dump.contains("chaos-2"), "first chaos victim recorded: {dump}");

    server.shutdown();
    server.wait();
}

#[test]
fn counters_are_monotone_across_scrapes() {
    let cfg =
        ServeConfig { metrics_addr: Some("127.0.0.1:0".to_string()), ..ServeConfig::default() };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();
    let maddr = server.metrics_addr().unwrap().to_string();

    send_request(addr, &request("mono-1", 5), CLIENT_TIMEOUT).unwrap();
    let first = parse_exposition(&http::get(&maddr, "/metrics", SCRAPE_TIMEOUT).unwrap());
    send_request(addr, &request("mono-2", 6), CLIENT_TIMEOUT).unwrap();
    let second = parse_exposition(&http::get(&maddr, "/metrics", SCRAPE_TIMEOUT).unwrap());

    for name in [
        "usep_serve_requests_total",
        "usep_serve_accepted_total",
        "usep_serve_solve_ms_count",
        "usep_flightrec_events_total",
    ] {
        let (a, b) = (first.value(name).unwrap(), second.value(name).unwrap());
        assert!(b >= a, "{name} went backwards: {a} → {b}");
        assert!(b > 0.0, "{name} never moved");
    }

    server.shutdown();
    server.wait();
}
