//! Minimal blocking client: one request line out, one response line in.

use crate::protocol::{SolveRequest, SolveResponse};
use std::io::{self, BufRead, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Sends `request` to the server at `addr` and blocks for the typed
/// response. `timeout` bounds the wait for the response line (the solve
/// itself is bounded server-side, so a healthy server always answers
/// within its own `max_timeout_ms` plus queueing).
pub fn send_request(
    addr: impl ToSocketAddrs,
    request: &SolveRequest,
    timeout: Duration,
) -> io::Result<SolveResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    let line = serde_json::to_string(request)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(stream, "{line}")?;
    stream.flush()?;

    let mut reader = io::BufReader::new(stream);
    let mut reply = String::new();
    let n = reader.read_line(&mut reply)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection before responding",
        ));
    }
    serde_json::from_str(reply.trim_end()).map_err(|e| {
        io::Error::new(io::ErrorKind::InvalidData, format!("malformed response: {e}"))
    })
}
