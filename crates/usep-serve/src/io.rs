//! The journal's storage interface.
//!
//! [`Journal`](crate::journal::Journal) never touches the filesystem
//! directly: every byte goes through a [`JournalIo`], so the same
//! journaling, framing and replay logic runs against the production
//! [`StdIo`] (a real file, fsynced) and against `usep-chaos`'s
//! `FaultyIo` (an in-memory disk model injecting torn writes, lying
//! fsyncs, bit rot and ENOSPC from a seeded plan). The trait is
//! deliberately tiny — append, sync, read, atomic replace — because
//! that is the entire contract the journal's crash-safety argument
//! rests on.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Storage backend for a write-ahead journal.
///
/// Contract the journal relies on:
///
/// * `append` may land partially (a torn write) but never reorders;
/// * `sync` returning `Ok` means every previously appended byte
///   survives a crash (a backend may *lie* — that is exactly the fault
///   class the CRC frames and quarantine replay defend against);
/// * `replace` is all-or-nothing across a crash: afterwards a reader
///   sees either the old contents or the new, never a mixture.
pub trait JournalIo: std::fmt::Debug + Send + Sync {
    /// Appends raw bytes (one framed line, newline included).
    fn append(&self, bytes: &[u8]) -> io::Result<()>;
    /// Durably flushes everything appended so far (fsync).
    fn sync(&self) -> io::Result<()>;
    /// Reads the whole journal; missing backing store reads as empty.
    fn read(&self) -> io::Result<Vec<u8>>;
    /// Atomically replaces the journal contents (compaction).
    fn replace(&self, bytes: &[u8]) -> io::Result<()>;
    /// Current journal length in bytes (0 when missing).
    fn len(&self) -> io::Result<u64>;
    /// Whether the journal is empty (or missing).
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// Production backend: a real file opened in append mode.
///
/// `replace` stages the new contents in a sibling `<path>.compact.tmp`,
/// fsyncs it, renames it over the journal, fsyncs the directory, and
/// reopens the append handle — the rename swaps inodes, so appending
/// through the old descriptor would write to the unlinked file.
#[derive(Debug)]
pub struct StdIo {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl StdIo {
    /// Opens (creating if missing) `path` for appending.
    pub fn open(path: &Path) -> io::Result<StdIo> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(StdIo { path: path.to_path_buf(), file: Mutex::new(file) })
    }

    /// The sibling path `replace` stages the new contents in.
    pub fn tmp_path(&self) -> PathBuf {
        compact_tmp_path(&self.path)
    }
}

/// `<path>.compact.tmp` — fixed, so an interrupted compaction's
/// leftover is simply overwritten by the next one.
pub fn compact_tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".compact.tmp");
    PathBuf::from(os)
}

impl JournalIo for StdIo {
    fn append(&self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        file.write_all(bytes)
    }

    fn sync(&self) -> io::Result<()> {
        let file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        file.sync_data()
    }

    fn read(&self) -> io::Result<Vec<u8>> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn replace(&self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        // Hold the append lock across the whole swap so no append can
        // land between the rename and the handle reopen.
        let mut guard = self.file.lock().unwrap_or_else(|p| p.into_inner());
        let tmp = self.tmp_path();
        {
            let mut staged = std::fs::File::create(&tmp)?;
            staged.write_all(bytes)?;
            staged.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // fsync the directory so the rename itself survives a crash
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        *guard = std::fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        match std::fs::metadata(&self.path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }
}

/// CRC32 (IEEE, reflected, poly `0xEDB88320`) — the per-record frame
/// checksum. Detects every error burst shorter than 32 bits, which is
/// what makes the "every single-byte corruption is quarantined"
/// property provable rather than probabilistic.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("usep_io_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // reference values for the IEEE polynomial
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_any_single_byte_change() {
        let base = b"{\"Accepted\":{\"request\":{\"id\":\"r1\"}}}";
        let reference = crc32(base);
        for i in 0..base.len() {
            for bit in 0..8u8 {
                let mut mutated = base.to_vec();
                mutated[i] ^= 1 << bit;
                assert_ne!(crc32(&mutated), reference, "flip byte {i} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn std_io_appends_reads_and_reports_length() {
        let dir = tempdir("append");
        let path = dir.join("wal.jsonl");
        let io = StdIo::open(&path).unwrap();
        assert!(io.is_empty().unwrap());
        io.append(b"one\n").unwrap();
        io.append(b"two\n").unwrap();
        io.sync().unwrap();
        assert_eq!(io.read().unwrap(), b"one\ntwo\n");
        assert_eq!(io.len().unwrap(), 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn std_io_missing_file_reads_empty() {
        let dir = tempdir("missing");
        let path = dir.join("wal.jsonl");
        let io = StdIo::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(io.read().unwrap(), Vec::<u8>::new());
        assert_eq!(io.len().unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn std_io_replace_swaps_contents_and_keeps_appends_working() {
        let dir = tempdir("replace");
        let path = dir.join("wal.jsonl");
        let io = StdIo::open(&path).unwrap();
        io.append(b"old-1\nold-2\n").unwrap();
        io.replace(b"new-1\n").unwrap();
        assert_eq!(io.read().unwrap(), b"new-1\n");
        assert!(!io.tmp_path().exists(), "tmp file must be consumed by the rename");
        // the append handle must follow the new inode, not the unlinked one
        io.append(b"new-2\n").unwrap();
        io.sync().unwrap();
        assert_eq!(io.read().unwrap(), b"new-1\nnew-2\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
