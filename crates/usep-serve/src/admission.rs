//! Admission control: a bounded queue slot plus a byte reservation.
//!
//! Admission is the server's only defense against unbounded growth —
//! everything past it is already paid for. A request is admitted when
//! both of these hold, atomically enough for the purpose (the two
//! counters are acquired in order and rolled back on partial failure):
//!
//! * a **queue slot** is free (`depth < max_queue`), and
//! * its **estimated bytes** fit the shared [`MemoryLedger`].
//!
//! The returned [`Ticket`] is RAII: dropping it (response written,
//! request abandoned, worker panicked — any path) releases both
//! resources. Refusals are non-sticky by construction, so one giant
//! request bouncing off the ledger leaves every smaller one admissible.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use usep_guard::MemoryLedger;

/// Why a request was shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was full.
    QueueFull,
    /// The memory ledger could not fit the request's estimate.
    MemoryPressure,
}

/// Shared admission state: queue depth and byte ledger.
#[derive(Debug)]
pub struct Admission {
    max_queue: usize,
    depth: AtomicUsize,
    ledger: MemoryLedger,
}

impl Admission {
    /// Admission with `max_queue` queue slots and `max_bytes`
    /// reservable estimate bytes.
    pub fn new(max_queue: usize, max_bytes: usize) -> Admission {
        Admission { max_queue, depth: AtomicUsize::new(0), ledger: MemoryLedger::new(max_bytes) }
    }

    /// Tries to admit a request estimated at `bytes`. On success the
    /// ticket holds one queue slot and the reservation until dropped.
    pub fn try_admit(self: &Arc<Self>, bytes: usize) -> Result<Ticket, ShedReason> {
        let prev = self.depth.fetch_add(1, Ordering::Relaxed);
        if prev >= self.max_queue {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return Err(ShedReason::QueueFull);
        }
        if !self.ledger.try_reserve(bytes) {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return Err(ShedReason::MemoryPressure);
        }
        Ok(Ticket { admission: Arc::clone(self), bytes })
    }

    /// Requests currently holding a queue slot (queued or solving).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Estimate bytes currently reserved.
    pub fn reserved_bytes(&self) -> usize {
        self.ledger.in_use()
    }

    /// Total queue slots (admitted requests allowed at once).
    pub fn queue_capacity(&self) -> usize {
        self.max_queue
    }

    /// Total reservable estimate bytes.
    pub fn ledger_capacity(&self) -> usize {
        self.ledger.capacity()
    }
}

/// One admitted request's hold on the queue slot and byte reservation.
#[derive(Debug)]
pub struct Ticket {
    admission: Arc<Admission>,
    bytes: usize,
}

impl Drop for Ticket {
    fn drop(&mut self) {
        self.admission.ledger.release(self.bytes);
        self.admission.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_slots_bound_admission_and_tickets_release() {
        let adm = Arc::new(Admission::new(2, 1_000_000));
        let t1 = adm.try_admit(10).unwrap();
        let _t2 = adm.try_admit(10).unwrap();
        assert_eq!(adm.try_admit(10).unwrap_err(), ShedReason::QueueFull);
        assert_eq!(adm.depth(), 2);
        drop(t1);
        assert_eq!(adm.depth(), 1);
        let _t3 = adm.try_admit(10).unwrap();
    }

    #[test]
    fn memory_pressure_sheds_without_stickiness() {
        let adm = Arc::new(Admission::new(100, 1000));
        let big = adm.try_admit(900).unwrap();
        assert_eq!(adm.try_admit(200).unwrap_err(), ShedReason::MemoryPressure);
        // a smaller request still fits: refusals are per-request
        let small = adm.try_admit(100).unwrap();
        assert_eq!(adm.reserved_bytes(), 1000);
        drop(big);
        drop(small);
        assert_eq!(adm.reserved_bytes(), 0);
        assert_eq!(adm.depth(), 0);
    }

    #[test]
    fn failed_memory_admission_returns_the_queue_slot() {
        let adm = Arc::new(Admission::new(1, 10));
        assert_eq!(adm.try_admit(100).unwrap_err(), ShedReason::MemoryPressure);
        // the slot taken during the failed attempt was rolled back
        let _t = adm.try_admit(5).unwrap();
    }
}
