//! Capped exponential backoff with deterministic jitter.
//!
//! Between degradation-chain retries the server waits: the trip that
//! caused the retry was a *resource* trip, and an immediate re-attempt
//! under the same pressure mostly re-trips. The delay doubles per
//! attempt up to a cap, and is jittered into `[delay/2, delay]` so a
//! burst of requests tripping together does not retry in lockstep
//! ("equal jitter"). The jitter is a pure hash of `(seed, attempt)` —
//! no RNG state, no clock — so a given request retries on an identical
//! schedule every time it is replayed, which keeps crash/resume tests
//! and trace diffs deterministic.

use std::time::Duration;

/// Backoff policy: `base * 2^(attempt-1)` capped at `cap`, jittered.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Delay before the first retry (attempt 1), pre-jitter.
    pub base: Duration,
    /// Upper bound on the pre-jitter delay.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { base: Duration::from_millis(25), cap: Duration::from_millis(400) }
    }
}

/// SplitMix64 — the same tiny deterministic mixer the generators use.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (1-based; 0
    /// returns zero). `seed` individualizes the jitter per request —
    /// the server hashes the request id into it.
    ///
    /// The exponential factor is computed with a checked shift and the
    /// base×factor product with saturating u128 arithmetic, so no
    /// `attempt` — including ≥ 32, where a naive `1 << (attempt-1)`
    /// overflows — can wrap the delay below the cap. Fleet supervisors
    /// feed unbounded restart counts in here, not just the 3-tier
    /// degradation chain.
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = 1u128.checked_shl(attempt - 1).unwrap_or(u128::MAX);
        let uncapped_ns = self.base.as_nanos().saturating_mul(factor);
        let full_ns = uncapped_ns.min(self.cap.as_nanos());
        let full = Duration::from_nanos(u64::try_from(full_ns).unwrap_or(u64::MAX));
        let half = full / 2;
        let jitter_span = (full - half).as_nanos() as u64;
        if jitter_span == 0 {
            return full;
        }
        let jitter = splitmix64(seed ^ u64::from(attempt)) % (jitter_span + 1);
        half + Duration::from_nanos(jitter)
    }
}

/// A stable 64-bit hash of a request id, used as the jitter seed.
pub fn seed_from_id(id: &str) -> u64 {
    // FNV-1a: tiny, stable across platforms and runs
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_then_cap() {
        let p = RetryPolicy { base: Duration::from_millis(10), cap: Duration::from_millis(100) };
        // jitter keeps each delay in [full/2, full]
        for (attempt, full_ms) in [(1u32, 10u64), (2, 20), (3, 40), (4, 80), (5, 100), (9, 100)] {
            let d = p.delay(attempt, 42);
            assert!(
                d >= Duration::from_millis(full_ms) / 2 && d <= Duration::from_millis(full_ms),
                "attempt {attempt}: {d:?} outside [{}/2, {}] ms",
                full_ms,
                full_ms
            );
        }
        assert_eq!(p.delay(0, 42), Duration::ZERO);
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_varies_across_seeds() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay(3, 7), p.delay(3, 7));
        let distinct: std::collections::BTreeSet<Duration> =
            (0..32u64).map(|s| p.delay(3, s)).collect();
        assert!(distinct.len() > 16, "jitter should spread seeds: {}", distinct.len());
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let p = RetryPolicy::default();
        assert!(p.delay(u32::MAX, 1) <= p.cap);
    }

    #[test]
    fn id_seed_is_stable() {
        assert_eq!(seed_from_id("req-1"), seed_from_id("req-1"));
        assert_ne!(seed_from_id("req-1"), seed_from_id("req-2"));
    }
}
