//! The serve observability plane: every metric the server exports.
//!
//! [`ServeMetrics`] owns the Prometheus [`MetricsRegistry`], the
//! [`FlightRecorder`] ring buffer, and the atomic cells the serve hot
//! path increments. Three sourcing strategies coexist:
//!
//! * **cells** — `Arc<AtomicU64>` counters the serve code bumps
//!   directly where the label is only known at the event site
//!   (shed reason, completion status, failure reason, executed tier);
//! * **pull closures** — gauges and counters sampled at scrape time
//!   from structures that already track the truth (`Admission` depth
//!   and ledger, `TraceSink` counters, flight-recorder sequence);
//! * **histogram snapshots** — `TraceSink` log₂ histograms cloned per
//!   scrape and rendered as cumulative `_bucket{le=...}` ladders.
//!
//! Sourcing the `usep_trace_events_total{counter=...}` family straight
//! from the sink means *every* [`Counter`] the workspace defines is on
//! `/metrics` without a per-counter wiring step — a counter added to
//! `usep-trace` shows up on the next scrape.
//!
//! Nothing here holds an `Arc` to the server's `Inner`: closures
//! capture only `Admission`, `TraceSink` and the recorder, so the
//! registry can outlive (or be dropped independently of) the server
//! without a reference cycle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::admission::Admission;
use usep_algos::Algorithm;
use usep_obs::{FlightRecorder, MetricsRegistry};
use usep_trace::{Counter, TraceSink};

/// Every algorithm a response's `executed` field can name.
const EXECUTABLE: [Algorithm; 8] = [
    Algorithm::RatioGreedy,
    Algorithm::DeDP,
    Algorithm::DeDPO,
    Algorithm::DeDPORG,
    Algorithm::DeGreedy,
    Algorithm::DeGreedyRG,
    Algorithm::SingleEventGreedy,
    Algorithm::UtilityGreedy,
];

/// The server's metrics registry, flight recorder, and hot-path cells.
pub struct ServeMetrics {
    /// The registry `/metrics` renders.
    pub registry: Arc<MetricsRegistry>,
    /// Last-N annotated events, dumped on demand, panic or shutdown.
    pub recorder: Arc<FlightRecorder>,
    /// Solve-intended lines read off sockets (everything screened).
    pub requests: Arc<AtomicU64>,
    /// Lines refused before admission (parse/validation/algorithm).
    pub rejected: Arc<AtomicU64>,
    /// Requests shed because the bounded queue was full.
    pub shed_queue_full: Arc<AtomicU64>,
    /// Requests shed because the memory ledger refused the estimate.
    pub shed_memory: Arc<AtomicU64>,
    /// Solves that ended `Complete`.
    pub completed_complete: Arc<AtomicU64>,
    /// Solves that ended `Truncated`.
    pub completed_truncated: Arc<AtomicU64>,
    /// Solves that ended `Failed` on a contained panic.
    pub failed_panic: Arc<AtomicU64>,
    /// Solves that ended `Failed` on the infeasible-planning quarantine.
    pub failed_infeasible: Arc<AtomicU64>,
    /// Requests shed with a typed `Failed` because the write-ahead
    /// journal could not durably record them (ENOSPC, dead disk).
    pub failed_journal: Arc<AtomicU64>,
    /// Requests answered by a tier below the one they asked for,
    /// labelled by the executing algorithm.
    degraded: Vec<(&'static str, Arc<AtomicU64>)>,
    /// Jobs currently inside a worker (gauge cell).
    pub inflight: Arc<AtomicU64>,
}

impl ServeMetrics {
    /// Builds the registry with every serve series registered, backed
    /// by `sink` and `admission` for the pull-sourced families.
    pub fn new(
        sink: Arc<TraceSink>,
        admission: Arc<Admission>,
        flightrec_capacity: usize,
    ) -> ServeMetrics {
        let registry = Arc::new(MetricsRegistry::new());
        let recorder = Arc::new(FlightRecorder::new(flightrec_capacity));
        let started = Instant::now();

        registry.gauge_fn(
            "usep_uptime_seconds",
            "Seconds since the metrics plane started.",
            vec![],
            move || started.elapsed().as_secs_f64(),
        );
        registry.gauge_fn(
            "usep_build_info",
            "Constant 1, labelled with the build version.",
            vec![("version", env!("CARGO_PKG_VERSION").to_string())],
            || 1.0,
        );

        // -- admission / saturation gauges ---------------------------
        let adm = Arc::clone(&admission);
        registry.gauge_fn(
            "usep_serve_queue_depth",
            "Requests holding a queue slot (queued or solving).",
            vec![],
            move || adm.depth() as f64,
        );
        let adm = Arc::clone(&admission);
        registry.gauge_fn(
            "usep_serve_queue_capacity",
            "Bounded queue slots configured.",
            vec![],
            move || adm.queue_capacity() as f64,
        );
        let adm = Arc::clone(&admission);
        registry.gauge_fn(
            "usep_serve_ledger_reserved_bytes",
            "Estimate bytes currently reserved in the admission ledger.",
            vec![],
            move || adm.reserved_bytes() as f64,
        );
        let adm = Arc::clone(&admission);
        registry.gauge_fn(
            "usep_serve_ledger_capacity_bytes",
            "Byte capacity of the admission ledger.",
            vec![],
            move || adm.ledger_capacity() as f64,
        );
        let inflight = Arc::new(AtomicU64::new(0));
        let cell = Arc::clone(&inflight);
        registry.gauge_fn(
            "usep_serve_inflight",
            "Jobs currently executing inside a worker thread.",
            vec![],
            move || cell.load(Ordering::Relaxed) as f64,
        );

        // -- request lifecycle counters ------------------------------
        let requests = registry.counter_cell(
            "usep_serve_requests_total",
            "Solve-intended request lines read off client sockets.",
            vec![],
        );
        let rejected = registry.counter_cell(
            "usep_serve_rejected_total",
            "Requests refused before admission (parse, validation, unknown algorithm).",
            vec![],
        );
        let shed_queue_full = registry.counter_cell(
            "usep_serve_shed_total",
            "Requests shed at admission, by reason.",
            vec![("reason", "queue_full".to_string())],
        );
        let shed_memory = registry.counter_cell(
            "usep_serve_shed_total",
            "Requests shed at admission, by reason.",
            vec![("reason", "memory_pressure".to_string())],
        );
        let completed_complete = registry.counter_cell(
            "usep_serve_completed_total",
            "Journaled solve completions, by outcome status.",
            vec![("status", "complete".to_string())],
        );
        let completed_truncated = registry.counter_cell(
            "usep_serve_completed_total",
            "Journaled solve completions, by outcome status.",
            vec![("status", "truncated".to_string())],
        );
        let failed_panic = registry.counter_cell(
            "usep_serve_failed_total",
            "Solves answered Failed, by reason.",
            vec![("reason", "panic".to_string())],
        );
        let failed_infeasible = registry.counter_cell(
            "usep_serve_failed_total",
            "Solves answered Failed, by reason.",
            vec![("reason", "infeasible".to_string())],
        );
        let failed_journal = registry.counter_cell(
            "usep_serve_failed_total",
            "Solves answered Failed, by reason.",
            vec![("reason", "journal".to_string())],
        );
        let degraded: Vec<(&'static str, Arc<AtomicU64>)> = EXECUTABLE
            .iter()
            .map(|a| {
                let cell = registry.counter_cell(
                    "usep_serve_degraded_total",
                    "Requests answered by a tier below the one requested, by executing algorithm.",
                    vec![("executed", a.name().to_string())],
                );
                (a.name(), cell)
            })
            .collect();

        // -- sink-sourced counters -----------------------------------
        for (name, help, c) in [
            (
                "usep_serve_accepted_total",
                "Requests admitted into the queue (journaled as accepted).",
                Counter::ServeAccept,
            ),
            (
                "usep_serve_retried_total",
                "Serve-level retries down the degradation chain.",
                Counter::ServeRetry,
            ),
            (
                "usep_serve_replayed_total",
                "Duplicate ids answered from the completion cache.",
                Counter::ServeReplay,
            ),
            (
                "usep_serve_resumed_total",
                "Requests re-enqueued from the journal at startup.",
                Counter::ServeResume,
            ),
        ] {
            let sink = Arc::clone(&sink);
            registry.counter_fn(name, help, vec![], move || sink.counter(c));
        }

        // The whole trace-counter registry, one labelled series per
        // Counter — any probe-visible event in the workspace is
        // scrapeable without per-counter wiring.
        for c in Counter::ALL {
            let sink = Arc::clone(&sink);
            registry.counter_fn(
                "usep_trace_events_total",
                "Workspace trace counters, by counter name.",
                vec![("counter", c.name().to_string())],
                move || sink.counter(c),
            );
        }

        let rec = Arc::clone(&recorder);
        registry.counter_fn(
            "usep_flightrec_events_total",
            "Events recorded into the flight-recorder ring (including overwritten ones).",
            vec![],
            move || rec.recorded(),
        );

        // -- latency histograms --------------------------------------
        for (name, help, key) in [
            (
                "usep_serve_solve_ms",
                "End-to-end solve wall-clock per job, milliseconds.",
                "serve.solve_ms",
            ),
            (
                "usep_serve_queue_wait_ms",
                "Admitted-to-worker-pickup wait per job, milliseconds.",
                "serve.queue_wait_ms",
            ),
            (
                "usep_serve_queue_depth_at_accept",
                "Queue depth observed at each admission.",
                "serve.queue_depth",
            ),
            (
                "usep_par_worker_ms",
                "Per-worker busy time inside fork-join sections, milliseconds.",
                "par.worker_ms",
            ),
            (
                "usep_delta_touched_entities",
                "Entities touched per delta-session mutation (bounded-repair work).",
                usep_delta::TOUCHED_HISTOGRAM,
            ),
        ] {
            let sink = Arc::clone(&sink);
            registry.histogram_fn(name, help, vec![], move || {
                sink.histogram(key).unwrap_or_default()
            });
        }

        ServeMetrics {
            registry,
            recorder,
            requests,
            rejected,
            shed_queue_full,
            shed_memory,
            completed_complete,
            completed_truncated,
            failed_panic,
            failed_infeasible,
            failed_journal,
            degraded,
            inflight,
        }
    }

    /// Bumps the degraded counter for the tier that actually executed.
    pub fn count_degraded(&self, executed: &str) {
        if let Some((_, cell)) = self.degraded.iter().find(|(n, _)| *n == executed) {
            cell.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Renders the current exposition (what `/metrics` serves).
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_trace::Probe;

    fn fresh() -> ServeMetrics {
        ServeMetrics::new(Arc::new(TraceSink::new()), Arc::new(Admission::new(4, 1 << 20)), 16)
    }

    #[test]
    fn every_trace_counter_name_appears_in_the_exposition() {
        let m = fresh();
        let text = m.render();
        for c in Counter::ALL {
            let needle = format!("usep_trace_events_total{{counter=\"{}\"}}", c.name());
            assert!(text.contains(&needle), "missing series {needle}");
        }
    }

    #[test]
    fn cells_show_up_in_the_rendered_text() {
        let m = fresh();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.shed_queue_full.fetch_add(1, Ordering::Relaxed);
        m.count_degraded("RatioGreedy");
        m.count_degraded("not-an-algorithm"); // ignored, no panic
        let text = m.render();
        assert!(text.contains("usep_serve_requests_total 3"));
        assert!(text.contains("usep_serve_shed_total{reason=\"queue_full\"} 1"));
        assert!(text.contains("usep_serve_degraded_total{executed=\"RatioGreedy\"} 1"));
    }

    #[test]
    fn admission_gauges_track_the_live_ledger() {
        let sink = Arc::new(TraceSink::new());
        let admission = Arc::new(Admission::new(4, 1 << 20));
        let m = ServeMetrics::new(sink, Arc::clone(&admission), 16);
        let ticket = admission.try_admit(1000).unwrap();
        let text = m.render();
        assert!(text.contains("usep_serve_queue_depth 1"));
        assert!(text.contains("usep_serve_ledger_reserved_bytes 1000"));
        assert!(text.contains("usep_serve_ledger_capacity_bytes 1048576"));
        drop(ticket);
        assert!(m.render().contains("usep_serve_queue_depth 0"));
    }

    #[test]
    fn sink_counters_and_histograms_flow_through() {
        let sink = Arc::new(TraceSink::new());
        let m = ServeMetrics::new(Arc::clone(&sink), Arc::new(Admission::new(4, 1 << 20)), 16);
        sink.count(Counter::ServeAccept, 5);
        sink.record("serve.solve_ms", 3.0);
        sink.record("serve.solve_ms", 900.0);
        let text = m.render();
        assert!(text.contains("usep_serve_accepted_total 5"));
        assert!(text.contains("usep_serve_solve_ms_count 2"));
        assert!(text.contains("usep_serve_solve_ms_bucket{le=\"+Inf\"} 2"));
    }
}
