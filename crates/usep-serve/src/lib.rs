//! Long-running batch solve service for USEP.
//!
//! The rest of the workspace solves one instance per process: a panic,
//! a malformed request or a `kill -9` loses all work. This crate turns
//! those solvers into a *service* with the robustness substrate a
//! planning platform needs, built from the layers underneath it —
//! `usep-guard` budgets bound each solve, `usep-par` contains worker
//! panics, `usep-trace` counts what the server does:
//!
//! * **Protocol** ([`protocol`]) — one JSON object per line over plain
//!   TCP (`std::net`, matching the repo's vendored-deps policy). A
//!   [`SolveRequest`] carries the instance inline plus budget fields;
//!   every reply is a typed [`SolveResponse`] — `Complete`,
//!   `Truncated{reason}`, `Failed{panic}`, `Overloaded{..}` or
//!   `Rejected{error}` — never a dropped connection.
//! * **Admission control** ([`admission`]) — a bounded request queue
//!   plus a non-sticky byte ledger ([`usep_guard::MemoryLedger`]).
//!   Requests whose estimated footprint or queue slot does not fit are
//!   shed with `Overloaded` instead of degrading everyone.
//! * **Fault isolation** ([`server`]) — each solve runs behind a
//!   `catch_unwind` fence; `usep-par` propagates worker-pool panics to
//!   the fence deterministically, so a panicking request answers
//!   `Failed{panic}` and the server keeps serving.
//! * **Retry with backoff** ([`backoff`]) — a `truncated:memory_ceiling`
//!   attempt is retried one tier *down* the existing
//!   DeDP → DeDPO → RatioGreedy degradation chain after a capped
//!   exponential backoff with deterministic jitter, rather than
//!   re-running the same solver into the same wall.
//! * **Crash-safe journal** ([`journal`]) — an append-only JSON-lines
//!   write-ahead journal, fsynced on accept and on completion, with
//!   length+CRC32 framed records behind a pluggable [`JournalIo`]
//!   backend. Replay quarantines corrupt records (counted, skipped,
//!   never fatal), and a restarted server (`usep serve --resume
//!   <journal>`) compacts the journal to a generation-stamped
//!   snapshot, re-enqueues accepted-but-incomplete requests and
//!   answers duplicate ids from the journaled completion cache
//!   without re-solving.
//! * **Delta sessions** ([`protocol::MutateRequest`]) — a
//!   `{"verb":"mutate"}` control line opens a named warm
//!   [`usep_delta::DeltaEngine`] session and streams typed mutations
//!   (event add/remove, capacity change, user arrive/depart, μ
//!   updates) through its bounded-repair path. Every accepted mutation
//!   is journaled (fsynced) *before* it is applied and deduplicated on
//!   its client-chosen mutation id, so a crashed server rebuilds every
//!   session's warm state exactly on `--resume` and duplicate sends
//!   answer the cached outcome — exactly-once, like solve ids.
//! * **Observability plane** ([`obs`]) — a Prometheus-text `/metrics`
//!   listener on its own port (`--metrics-addr`), request-scoped
//!   tracing (every span under a solve carries the request id and
//!   retry attempt), per-phase latency breakdowns on every reply, and
//!   a fixed-size flight recorder dumped via the `dump` verb, on
//!   contained panics, and at shutdown.

#![forbid(unsafe_code)]

pub mod admission;
pub mod backoff;
pub mod client;
pub mod io;
pub mod journal;
pub mod obs;
pub mod protocol;
pub mod server;

pub use admission::{Admission, ShedReason, Ticket};
pub use backoff::RetryPolicy;
pub use client::send_request;
pub use io::{compact_tmp_path, crc32, JournalIo, StdIo};
pub use journal::{DeltaSessionState, Journal, JournalRecord, JournalState};
pub use obs::ServeMetrics;
pub use protocol::{
    estimate_instance_bytes, ControlRequest, MutateRequest, MutateResponse, PhaseTimings,
    SolveRequest, SolveResponse, Status,
};
pub use server::{
    solve_with_retry, solve_with_retry_observed, Server, ServerHandle, ServeConfig, SolveLimits,
};
