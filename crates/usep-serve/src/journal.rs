//! Crash-safe write-ahead journal: framed, checksummed JSON lines,
//! fsynced through a pluggable [`JournalIo`] backend.
//!
//! Record kinds, each carrying its full payload so a restarted server
//! needs nothing but the journal:
//!
//! * `Header{generation, shard_id}` — identity stamp written as the
//!   first record of every new journal. The generation increments on
//!   each compaction; the shard id guards against cross-shard resume.
//! * `Accepted{request}` — written (and fsynced) *before* the request
//!   enters the queue. If the process dies mid-solve, the restarted
//!   server re-enqueues it.
//! * `Completed{response}` — written (and fsynced) when the solve
//!   finishes, whatever the outcome. A completed id is never re-solved:
//!   a duplicate submission is answered from this record.
//! * `ShardMeta{shard_id}` — the pre-frame identity stamp, kept so
//!   journals written before the framed format replay unchanged.
//! * `DeltaOpen` / `DeltaMutate` / `DeltaClose` — the delta-session
//!   stream: an opened session's instance, its accepted mutations
//!   (fsynced *before* the engine applies them, deduplicated on the
//!   client's mutation id), and its close. A resumed server rebuilds
//!   each open session's warm state by re-running the cold solve and
//!   re-applying the journaled mutations in order.
//!
//! **Frame format.** Each line is
//! `{"len":N,"crc":"xxxxxxxx","rec":<record>}` where `N` is the byte
//! length of the serialized record and the CRC32 (IEEE) covers those
//! exact bytes. The frame is parsed positionally — never re-serialized
//! — so the checksum verifies the bytes that were actually written.
//! Bare (unframed) record lines are accepted as the legacy format.
//!
//! **Quarantine.** [`JournalState::replay`] is a pure function of the
//! journal bytes. A torn *final* line (crash mid-append) sets
//! [`JournalState::torn_tail`]; a corrupt line anywhere else — CRC
//! mismatch, mangled frame, bit rot from a lying disk — is counted in
//! [`JournalState::quarantined`] and skipped, so one rotted record
//! costs one record, not the whole journal. Callers surface the count
//! through the `journal_quarantined` trace counter.
//!
//! **Compaction.** [`Journal::compact`] snapshots the replayed state
//! (one header with a bumped generation, one `Accepted` per pending
//! request, one `Completed` per cached response) and atomically
//! replaces the file via tmp-file + rename, so per-shard journals stop
//! growing without bound across `--resume` cycles. Quarantined lines
//! are dropped — they were already unrecoverable.

use crate::io::{crc32, JournalIo, StdIo};
use crate::protocol::{SolveRequest, SolveResponse};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;
use usep_core::Instance;
use usep_delta::Mutation;

/// One journal line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum JournalRecord {
    /// Identity stamp written as the first record of every new journal
    /// (and rewritten, with a bumped generation, by each compaction).
    /// A fleet shard refuses to resume from a journal stamped with a
    /// different shard id — per-shard journals must never be silently
    /// merged across shards, because each shard's completed cache is
    /// only authoritative for the ids the router sent *it*.
    Header {
        /// Compaction generation: 1 for a fresh journal, +1 per
        /// [`Journal::compact`].
        generation: u64,
        /// Owning shard's stable name, when the journal belongs to a
        /// fleet worker.
        shard_id: Option<String>,
    },
    /// Legacy identity stamp from the pre-frame format; replays like a
    /// [`JournalRecord::Header`] without a generation.
    ShardMeta {
        /// Owning shard's stable name (e.g. `shard-0`).
        shard_id: String,
    },
    /// Request admitted; solve owed.
    Accepted {
        /// The full request, so resume needs no other source.
        request: SolveRequest,
    },
    /// Request finished with this response.
    Completed {
        /// The full response, so duplicate ids replay without solving.
        response: SolveResponse,
    },
    /// A delta session opened over this instance. Written (and
    /// fsynced) *before* the warm state is built, so a resumed server
    /// can rebuild the session by re-running the cold solve.
    DeltaOpen {
        /// Client-chosen session name.
        session: String,
        /// The full instance the session cold-solved.
        instance: Arc<Instance>,
        /// Drift fraction the session falls back to a full resolve at.
        fallback_threshold: f64,
    },
    /// One mutation accepted into a delta session. Written (and
    /// fsynced) *before* the engine applies it — the mutation id is
    /// the exactly-once key: replay deduplicates on it, and a resumed
    /// server re-applies the survivors in order to rebuild the warm
    /// state deterministically.
    DeltaMutate {
        /// Owning session.
        session: String,
        /// Client-chosen exactly-once key.
        mutation_id: String,
        /// The typed mutation.
        mutation: Mutation,
    },
    /// A delta session closed; its records stop replaying.
    DeltaClose {
        /// The closed session.
        session: String,
    },
}

/// Every framed line starts with this; anything else is parsed as a
/// legacy bare-record line.
const FRAME_PREFIX: &str = "{\"len\":";

/// Wraps one serialized record in the length+CRC frame (newline
/// included — one frame is one line).
fn frame_line(rec_json: &str) -> String {
    format!(
        "{{\"len\":{},\"crc\":\"{:08x}\",\"rec\":{}}}\n",
        rec_json.len(),
        crc32(rec_json.as_bytes()),
        rec_json
    )
}

/// Strict positional frame parser. Returns `None` for *any* deviation —
/// wrong length, CRC mismatch, non-canonical hex, trailing bytes — so
/// a corrupt frame can never be silently accepted. The CRC is checked
/// against the exact payload bytes between `"rec":` and the closing
/// brace; nothing is re-serialized.
fn parse_frame(line: &str) -> Option<JournalRecord> {
    let rest = line.strip_prefix(FRAME_PREFIX)?;
    let comma = rest.find(',')?;
    let digits = &rest[..comma];
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let len: usize = digits.parse().ok()?;
    let rest = rest[comma..].strip_prefix(",\"crc\":\"")?;
    if rest.len() < 8 || !rest.as_bytes()[..8].iter().all(u8::is_ascii_hexdigit) {
        return None;
    }
    // canonical lowercase only: a case-flipped hex digit must read as
    // corruption, not as the same checksum spelled differently
    if rest.as_bytes()[..8].iter().any(u8::is_ascii_uppercase) {
        return None;
    }
    let crc = u32::from_str_radix(&rest[..8], 16).ok()?;
    let payload = rest[8..].strip_prefix("\",\"rec\":")?.strip_suffix('}')?;
    if payload.len() != len || crc32(payload.as_bytes()) != crc {
        return None;
    }
    serde_json::from_str(payload).ok()
}

/// Append handle. One framed line per [`Journal::append`], fsynced
/// before it returns — the caller may treat a returned `Ok` as durable
/// (modulo a lying backend, which is the quarantine's job to survive).
#[derive(Debug)]
pub struct Journal {
    io: Arc<dyn JournalIo>,
}

impl Journal {
    /// Opens (creating if missing) `path` for appending, stamping a
    /// [`JournalRecord::Header`] when the file is new or empty.
    pub fn open(path: &Path) -> io::Result<Journal> {
        Journal::from_io(Arc::new(StdIo::open(path)?), None)
    }

    /// Opens `path` for appending as `shard_id`'s journal. Existing
    /// non-empty journals are left as-is — the caller is expected to
    /// have vetted ownership via [`JournalState::replay_expecting`]
    /// before appending.
    pub fn open_labeled(path: &Path, shard_id: &str) -> io::Result<Journal> {
        Journal::from_io(Arc::new(StdIo::open(path)?), Some(shard_id))
    }

    /// Wraps an arbitrary [`JournalIo`] backend (the production
    /// [`StdIo`], or a fault-injecting stand-in), stamping a header
    /// when the backing store is empty.
    pub fn from_io(io: Arc<dyn JournalIo>, shard_id: Option<&str>) -> io::Result<Journal> {
        let journal = Journal { io };
        if journal.io.is_empty()? {
            journal.append(&JournalRecord::Header {
                generation: 1,
                shard_id: shard_id.map(str::to_string),
            })?;
        }
        Ok(journal)
    }

    /// Appends one framed record and fsyncs.
    pub fn append(&self, record: &JournalRecord) -> io::Result<()> {
        let rec = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.io.append(frame_line(&rec).as_bytes())?;
        self.io.sync()
    }

    /// Snapshots `state` over the journal: a header with the next
    /// generation, one `Accepted` per pending request, one `Completed`
    /// per cached response — atomically, via the backend's tmp-file +
    /// rename `replace`. A crash at any point leaves either the old or
    /// the new journal fully intact. Quarantined lines do not survive
    /// compaction (they were unrecoverable), and the torn tail, if any,
    /// is healed.
    pub fn compact(&self, state: &JournalState) -> io::Result<()> {
        let mut buf = String::new();
        let mut push = |record: &JournalRecord| -> io::Result<()> {
            let rec = serde_json::to_string(record)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            buf.push_str(&frame_line(&rec));
            Ok(())
        };
        push(&JournalRecord::Header {
            generation: state.generation + 1,
            shard_id: state.shard_id.clone(),
        })?;
        for request in &state.pending {
            push(&JournalRecord::Accepted { request: request.clone() })?;
        }
        for response in state.completed.values() {
            push(&JournalRecord::Completed { response: response.clone() })?;
        }
        for (name, session) in &state.delta_sessions {
            push(&JournalRecord::DeltaOpen {
                session: name.clone(),
                instance: Arc::clone(&session.instance),
                fallback_threshold: session.fallback_threshold,
            })?;
            for (mutation_id, mutation) in &session.mutations {
                push(&JournalRecord::DeltaMutate {
                    session: name.clone(),
                    mutation_id: mutation_id.clone(),
                    mutation: mutation.clone(),
                })?;
            }
        }
        self.io.replace(buf.as_bytes())
    }

    /// Current journal size in bytes (what compaction shrinks).
    #[allow(clippy::len_without_is_empty)] // fallible, byte-size len: an is_empty would also be fallible and misleading
    pub fn len(&self) -> io::Result<u64> {
        self.io.len()
    }
}

/// One delta session as the journal remembers it: the opening
/// instance plus the ordered, deduplicated mutation stream. Replaying
/// the mutations through a fresh [`usep_delta::DeltaEngine`] rebuilds
/// the dead server's warm state exactly (the engine is deterministic).
#[derive(Clone, Debug)]
pub struct DeltaSessionState {
    /// The instance the session opened with.
    pub instance: Arc<Instance>,
    /// The session's fallback threshold at open.
    pub fallback_threshold: f64,
    /// `(mutation_id, mutation)` in acceptance order; duplicate ids
    /// keep the first record, like every other journal family.
    pub mutations: Vec<(String, Mutation)>,
}

/// The state a journal replays to.
#[derive(Debug, Default)]
pub struct JournalState {
    /// Accepted ids with no completion, in acceptance order (the order
    /// the dead server would have solved them). Duplicate accepts of
    /// one id keep the first request.
    pub pending: Vec<SolveRequest>,
    /// Completed responses by id. Duplicate completions of one id keep
    /// the first response, so replaying cannot change an answer.
    pub completed: BTreeMap<String, SolveResponse>,
    /// Whether a torn (unparseable) final line was skipped — the
    /// fingerprint of a crash mid-append.
    pub torn_tail: bool,
    /// Corrupt interior lines skipped during replay: CRC mismatches,
    /// mangled frames, unparseable legacy lines. Each cost exactly one
    /// record; callers surface the count as `journal_quarantined`.
    pub quarantined: u64,
    /// Shard id from the journal's header (or legacy `ShardMeta`)
    /// stamp, when present. The first stamp wins, like every record.
    pub shard_id: Option<String>,
    /// Compaction generation from the journal's header; 0 for legacy
    /// journals written before headers existed.
    pub generation: u64,
    /// Open delta sessions by name: opening instance plus the ordered
    /// mutation stream. Closed sessions do not replay.
    pub delta_sessions: BTreeMap<String, DeltaSessionState>,
}

impl JournalState {
    /// Replays raw journal bytes. Infallible by design: corruption is
    /// quarantined, a torn tail is flagged, invalid UTF-8 (bit rot can
    /// produce it) corrupts only the lines it lands on.
    pub fn replay_bytes(bytes: &[u8]) -> JournalState {
        let mut state = JournalState::default();
        let mut accepted: BTreeMap<String, ()> = BTreeMap::new();
        let text = String::from_utf8_lossy(bytes);
        let lines: Vec<&str> = text.split('\n').collect();
        // a trailing newline yields one empty final fragment; real
        // content in the final fragment means the newline never landed
        let last_content = lines.iter().rposition(|l| !l.trim().is_empty()).unwrap_or(0);
        let file_ends_in_newline = text.ends_with('\n');
        for (lineno, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = if line.starts_with(FRAME_PREFIX) {
                parse_frame(line)
            } else {
                // legacy bare-record line from the pre-frame format
                serde_json::from_str::<JournalRecord>(line).ok()
            };
            let Some(record) = parsed else {
                if lineno == last_content && !file_ends_in_newline {
                    state.torn_tail = true;
                } else if lineno == last_content {
                    // a whole final line that fails to parse is still
                    // the torn-tail shape (crash between write and
                    // sync can tear mid-line yet keep the newline)
                    state.torn_tail = true;
                } else {
                    state.quarantined += 1;
                }
                continue;
            };
            match record {
                JournalRecord::Header { generation, shard_id } => {
                    if state.generation == 0 {
                        state.generation = generation;
                    }
                    if state.shard_id.is_none() {
                        state.shard_id = shard_id;
                    }
                }
                JournalRecord::ShardMeta { shard_id } => {
                    if state.shard_id.is_none() {
                        state.shard_id = Some(shard_id);
                    }
                }
                JournalRecord::Accepted { request } => {
                    if !accepted.contains_key(&request.id) {
                        accepted.insert(request.id.clone(), ());
                        state.pending.push(request);
                    }
                }
                JournalRecord::Completed { response } => {
                    state.completed.entry(response.id.clone()).or_insert(response);
                }
                JournalRecord::DeltaOpen { session, instance, fallback_threshold } => {
                    // duplicate opens keep the first (re-opening is the
                    // client's idempotent retry, not a new session)
                    state.delta_sessions.entry(session).or_insert(DeltaSessionState {
                        instance,
                        fallback_threshold,
                        mutations: Vec::new(),
                    });
                }
                JournalRecord::DeltaMutate { session, mutation_id, mutation } => {
                    // a mutation for a session this journal never
                    // opened (or already closed) has no state to act
                    // on; dropping it is the only consistent replay
                    if let Some(s) = state.delta_sessions.get_mut(&session) {
                        if !s.mutations.iter().any(|(id, _)| *id == mutation_id) {
                            s.mutations.push((mutation_id, mutation));
                        }
                    }
                }
                JournalRecord::DeltaClose { session } => {
                    state.delta_sessions.remove(&session);
                }
            }
        }
        state.pending.retain(|r| !state.completed.contains_key(&r.id));
        state
    }

    /// Replays the journal at `path`. Missing file replays to the
    /// empty state (a fresh server with a journal configured but never
    /// written).
    pub fn replay(path: &Path) -> io::Result<JournalState> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalState::default()),
            Err(e) => return Err(e),
        };
        Ok(JournalState::replay_bytes(&bytes))
    }

    /// Replays a journal through its [`JournalIo`] backend.
    pub fn replay_io(io: &dyn JournalIo) -> io::Result<JournalState> {
        Ok(JournalState::replay_bytes(&io.read()?))
    }

    /// Replays the journal at `path` and verifies it belongs to
    /// `expected` shard. A journal stamped with a *different* shard id
    /// is rejected loudly — resuming shard B from shard A's journal
    /// would merge two shards' completed caches and silently serve
    /// another shard's answers. Unstamped journals (pre-fleet servers)
    /// replay fine: the stamp is only checked when both sides name a
    /// shard.
    pub fn replay_expecting(path: &Path, expected: &str) -> io::Result<JournalState> {
        JournalState::replay(path)?.expect_shard(expected, &path.display().to_string())
    }

    /// [`Self::replay_io`] with the same cross-shard guard as
    /// [`Self::replay_expecting`].
    pub fn replay_io_expecting(io: &dyn JournalIo, expected: &str) -> io::Result<JournalState> {
        JournalState::replay_io(io)?.expect_shard(expected, "journal")
    }

    fn expect_shard(self, expected: &str, label: &str) -> io::Result<JournalState> {
        if let Some(found) = &self.shard_id {
            if found != expected {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "journal {label} belongs to shard '{found}', refusing to resume it as \
                         shard '{expected}' — per-shard journals must not be merged"
                    ),
                ));
            }
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Status;
    use usep_core::{Cost, EventId, InstanceBuilder, Point, TimeInterval, UserId};

    fn request(id: &str) -> SolveRequest {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::new(0, 0), TimeInterval::new(0, 5).unwrap());
        b.user(Point::new(0, 1), Cost::new(10));
        b.utility(EventId(0), UserId(0), 0.9);
        SolveRequest {
            id: id.to_string(),
            instance: std::sync::Arc::new(b.build().unwrap()),
            algorithm: None,
            timeout_ms: None,
            mem_budget_mb: None,
            city: None,
        }
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("usep_journal_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_replay_partitions_pending_and_completed() {
        let dir = tempdir("basic");
        let path = dir.join("wal.jsonl");
        let journal = Journal::open(&path).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("a") }).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("b") }).unwrap();
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare("a", Status::Complete),
            })
            .unwrap();
        let state = JournalState::replay(&path).unwrap();
        assert_eq!(state.pending.len(), 1);
        assert_eq!(state.pending[0].id, "b");
        assert_eq!(state.completed.len(), 1);
        assert_eq!(state.completed["a"].status, Status::Complete);
        assert!(!state.torn_tail);
        assert_eq!(state.quarantined, 0);
        assert_eq!(state.generation, 1, "fresh journal carries a generation-1 header");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_replays_empty() {
        let state = JournalState::replay(Path::new("/nonexistent/usep/wal.jsonl")).unwrap();
        assert!(state.pending.is_empty());
        assert!(state.completed.is_empty());
        assert_eq!(state.generation, 0);
    }

    #[test]
    fn torn_final_line_is_tolerated_and_interior_corruption_is_quarantined() {
        let dir = tempdir("torn");
        let path = dir.join("wal.jsonl");
        let journal = Journal::open(&path).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("a") }).unwrap();
        drop(journal);
        // simulate a crash mid-append: a half-written frame at the tail
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(b"{\"len\":431,\"crc\":\"00ab");
        std::fs::write(&path, &raw).unwrap();
        let state = JournalState::replay(&path).unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.quarantined, 0, "a torn tail is not corruption");
        assert_eq!(state.pending.len(), 1);

        // the same garbage *followed by* a valid line is interior
        // corruption: quarantined (counted + skipped), never fatal
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(b"\n");
        std::fs::write(&path, &raw).unwrap();
        let journal = Journal::open(&path).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("b") }).unwrap();
        let state = JournalState::replay(&path).unwrap();
        assert!(!state.torn_tail);
        assert_eq!(state.quarantined, 1);
        assert_eq!(state.pending.len(), 2, "records around the rot must survive");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_flipped_byte_in_a_frame_is_quarantined() {
        let dir = tempdir("rot");
        let path = dir.join("wal.jsonl");
        let journal = Journal::open(&path).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("a") }).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("b") }).unwrap();
        drop(journal);
        let mut raw = std::fs::read(&path).unwrap();
        // flip one payload bit inside the *first* accept frame (an
        // interior line), leaving the length intact
        let needle = b"\"id\":\"a\"";
        let pos = raw.windows(needle.len()).position(|w| w == needle).expect("id bytes")
            + needle.len()
            - 2;
        raw[pos] ^= 0x04; // 'a' -> 'e' inside the first accept frame
        std::fs::write(&path, &raw).unwrap();
        let state = JournalState::replay(&path).unwrap();
        assert_eq!(state.quarantined, 1);
        assert_eq!(state.pending.len(), 1, "only the rotted record is lost");
        assert_eq!(state.pending[0].id, "b");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_bare_record_lines_replay_alongside_frames() {
        let dir = tempdir("legacy");
        let path = dir.join("wal.jsonl");
        // a pre-frame journal: bare records, ShardMeta stamp, no header
        let legacy_meta = serde_json::to_string(&JournalRecord::ShardMeta {
            shard_id: "shard-7".to_string(),
        })
        .unwrap();
        let legacy_accept =
            serde_json::to_string(&JournalRecord::Accepted { request: request("old") }).unwrap();
        std::fs::write(&path, format!("{legacy_meta}\n{legacy_accept}\n")).unwrap();
        // a post-upgrade server appends framed records to the same file
        let journal = Journal::open(&path).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("new") }).unwrap();
        let state = JournalState::replay(&path).unwrap();
        assert_eq!(state.shard_id.as_deref(), Some("shard-7"));
        assert_eq!(state.generation, 0, "legacy journals predate generations");
        assert_eq!(state.pending.len(), 2);
        assert_eq!(state.quarantined, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_snapshots_state_bumps_generation_and_shrinks_the_file() {
        let dir = tempdir("compact");
        let path = dir.join("wal.jsonl");
        let journal = Journal::open_labeled(&path, "shard-3").unwrap();
        for i in 0..8 {
            journal.append(&JournalRecord::Accepted { request: request(&format!("r{i}")) }).unwrap();
        }
        for i in 0..6 {
            journal
                .append(&JournalRecord::Completed {
                    response: SolveResponse::bare(format!("r{i}"), Status::Complete),
                })
                .unwrap();
        }
        // plus some interior rot that compaction must not resurrect
        let mut raw = std::fs::read(&path).unwrap();
        let insert_at = raw.iter().position(|&b| b == b'\n').unwrap() + 1;
        let mut rotted = raw[..insert_at].to_vec();
        rotted.extend_from_slice(b"{\"len\":3,\"crc\":\"deadbeef\",\"rec\":{}}\n");
        rotted.extend_from_slice(&raw[insert_at..]);
        raw = rotted;
        std::fs::write(&path, &raw).unwrap();

        let before = JournalState::replay(&path).unwrap();
        assert_eq!(before.quarantined, 1);
        let grown = journal.len().unwrap();
        journal.compact(&before).unwrap();
        let after = JournalState::replay(&path).unwrap();

        assert!(journal.len().unwrap() < grown, "compaction must shrink the journal");
        assert_eq!(after.generation, before.generation + 1);
        assert_eq!(after.quarantined, 0, "rot does not survive compaction");
        assert_eq!(after.shard_id.as_deref(), Some("shard-3"));
        assert_eq!(after.pending.len(), before.pending.len());
        assert_eq!(
            after.pending.iter().map(|r| r.id.clone()).collect::<Vec<_>>(),
            before.pending.iter().map(|r| r.id.clone()).collect::<Vec<_>>(),
            "pending order is the dead server's acceptance order"
        );
        assert_eq!(after.completed.len(), before.completed.len());
        // compacting again is idempotent on the logical state
        journal.compact(&after).unwrap();
        let again = JournalState::replay(&path).unwrap();
        assert_eq!(again.generation, after.generation + 1);
        assert_eq!(again.completed.len(), after.completed.len());
        assert_eq!(again.pending.len(), after.pending.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_is_idempotent_and_duplicate_records_keep_first() {
        let dir = tempdir("idem");
        let path = dir.join("wal.jsonl");
        let journal = Journal::open(&path).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("a") }).unwrap();
        // duplicate accept (a resumed server re-journaling would be a
        // bug, but the replay must still converge)
        journal.append(&JournalRecord::Accepted { request: request("a") }).unwrap();
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare("a", Status::Complete),
            })
            .unwrap();
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare(
                    "a",
                    Status::Failed { panic: "late duplicate must not win".into() },
                ),
            })
            .unwrap();
        let once = JournalState::replay(&path).unwrap();
        let twice = JournalState::replay(&path).unwrap();
        assert_eq!(once.completed["a"].status, Status::Complete);
        assert_eq!(twice.completed["a"].status, Status::Complete);
        assert!(once.pending.is_empty() && twice.pending.is_empty());
        assert_eq!(once.completed.len(), twice.completed.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression: completion records landing *before* their accept
    /// record (a journal assembled from a merge, or a resumed server
    /// finishing an owed solve before any new accept lines). The accept
    /// must not resurrect the id into `pending`, and among duplicate
    /// completions the first record still wins regardless of where the
    /// accept sits between them.
    #[test]
    fn completions_out_of_order_with_accepts_keep_first_and_stay_completed() {
        let dir = tempdir("ooo");
        let path = dir.join("wal.jsonl");
        let journal = Journal::open(&path).unwrap();
        // id "a": Completed → Accepted → Completed (conflicting)
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare("a", Status::Complete),
            })
            .unwrap();
        journal.append(&JournalRecord::Accepted { request: request("a") }).unwrap();
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare(
                    "a",
                    Status::Failed { panic: "late duplicate must not win".into() },
                ),
            })
            .unwrap();
        // id "b": Completed with no accept record at all
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare(
                    "b",
                    Status::Truncated { reason: "deadline".into() },
                ),
            })
            .unwrap();
        // id "c": a genuinely pending accept, to prove retain() is
        // surgical rather than clearing everything
        journal.append(&JournalRecord::Accepted { request: request("c") }).unwrap();

        let state = JournalState::replay(&path).unwrap();
        assert_eq!(state.completed["a"].status, Status::Complete, "first record must win");
        assert!(state.shard_id.is_none(), "unlabeled journal has no shard id");
        assert!(
            matches!(state.completed["b"].status, Status::Truncated { .. }),
            "acceptless completion is still an answer"
        );
        assert_eq!(state.pending.len(), 1, "completed ids must not be pending");
        assert_eq!(state.pending[0].id, "c");
        // and replaying again converges to the same verdicts
        let again = JournalState::replay(&path).unwrap();
        assert_eq!(again.completed["a"].status, Status::Complete);
        assert_eq!(again.pending.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_sessions_replay_ordered_deduplicated_and_closed_sessions_vanish() {
        let dir = tempdir("delta");
        let path = dir.join("wal.jsonl");
        let journal = Journal::open(&path).unwrap();
        let instance = request("x").instance;
        let open = |session: &str| JournalRecord::DeltaOpen {
            session: session.to_string(),
            instance: Arc::clone(&instance),
            fallback_threshold: 0.3,
        };
        let mutate = |session: &str, id: &str, cap: u32| JournalRecord::DeltaMutate {
            session: session.to_string(),
            mutation_id: id.to_string(),
            mutation: Mutation::CapacityChange { event: 0, capacity: cap },
        };
        journal.append(&open("live")).unwrap();
        journal.append(&mutate("live", "m1", 2)).unwrap();
        journal.append(&mutate("live", "m2", 5)).unwrap();
        // duplicate id must keep the FIRST record (exactly-once)
        journal.append(&mutate("live", "m1", 9)).unwrap();
        // re-open of an existing session must not reset its stream
        journal.append(&open("live")).unwrap();
        // a whole second session, opened and closed
        journal.append(&open("dead")).unwrap();
        journal.append(&mutate("dead", "d1", 4)).unwrap();
        journal.append(&JournalRecord::DeltaClose { session: "dead".to_string() }).unwrap();
        // a mutation for a closed (or never-opened) session is inert
        journal.append(&mutate("dead", "d2", 7)).unwrap();
        journal.append(&mutate("ghost", "g1", 1)).unwrap();

        let state = JournalState::replay(&path).unwrap();
        assert_eq!(state.delta_sessions.len(), 1);
        let live = &state.delta_sessions["live"];
        assert_eq!(live.fallback_threshold, 0.3);
        assert_eq!(
            live.mutations
                .iter()
                .map(|(id, m)| match m {
                    Mutation::CapacityChange { capacity, .. } => (id.as_str(), *capacity),
                    other => panic!("unexpected {other:?}"),
                })
                .collect::<Vec<_>>(),
            vec![("m1", 2), ("m2", 5)],
            "acceptance order, first record wins per id"
        );

        // compaction carries the session snapshot across generations
        journal.compact(&state).unwrap();
        let after = JournalState::replay(&path).unwrap();
        assert_eq!(after.generation, state.generation + 1);
        assert_eq!(after.delta_sessions.len(), 1);
        assert_eq!(after.delta_sessions["live"].mutations.len(), 2);
        assert_eq!(after.delta_sessions["live"].instance, instance);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression (fleet): shard A's journal replayed as shard B must
    /// be rejected loudly, never silently merged. The same file replays
    /// fine as shard A, or on an unsharded server that does not pass an
    /// expectation at all.
    #[test]
    fn cross_shard_journal_replay_is_rejected_loudly() {
        let dir = tempdir("xshard");
        let path = dir.join("shard-a.wal.jsonl");
        let journal = Journal::open_labeled(&path, "shard-a").unwrap();
        journal.append(&JournalRecord::Accepted { request: request("r1") }).unwrap();
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare("r1", Status::Complete),
            })
            .unwrap();
        drop(journal);

        // right shard: replays cleanly and sees its own stamp
        let own = JournalState::replay_expecting(&path, "shard-a").unwrap();
        assert_eq!(own.shard_id.as_deref(), Some("shard-a"));
        assert_eq!(own.completed.len(), 1);

        // wrong shard: loud typed error naming both shards
        let err = JournalState::replay_expecting(&path, "shard-b").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("shard-a") && msg.contains("shard-b"), "{msg}");

        // unsharded replay (no expectation) still works — the stamp is
        // data, not a barrier, for pre-fleet tooling reading the file
        let plain = JournalState::replay(&path).unwrap();
        assert_eq!(plain.completed.len(), 1);

        // reopening with the same label must not double-stamp
        let journal = Journal::open_labeled(&path, "shard-a").unwrap();
        journal.append(&JournalRecord::Accepted { request: request("r2") }).unwrap();
        drop(journal);
        let stamps = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .filter(|l| l.contains("Header"))
            .count();
        assert_eq!(stamps, 1, "reopen must not re-stamp a labeled journal");

        // an unlabeled journal replays under any expectation
        let legacy = dir.join("legacy.wal.jsonl");
        let journal = Journal::open(&legacy).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("r3") }).unwrap();
        drop(journal);
        let state = JournalState::replay_expecting(&legacy, "shard-b").unwrap();
        assert_eq!(state.pending.len(), 1);
        assert!(state.shard_id.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
