//! Crash-safe write-ahead journal: append-only JSON lines, fsynced.
//!
//! Two record kinds, both carrying their full payload so a restarted
//! server needs nothing but the journal:
//!
//! * `Accepted{request}` — written (and fsynced) *before* the request
//!   enters the queue. If the process dies mid-solve, the restarted
//!   server re-enqueues it.
//! * `Completed{response}` — written (and fsynced) when the solve
//!   finishes, whatever the outcome. A completed id is never re-solved:
//!   a duplicate submission is answered from this record.
//!
//! [`JournalState::replay`] is a pure function of the file bytes —
//! replaying the same journal any number of times yields the same
//! state, which is what makes resume idempotent. A torn final line
//! (the crash happened mid-`write`) is tolerated and ignored; a
//! malformed line anywhere *else* is an error, because it means the
//! file was edited or corrupted rather than torn.

use crate::protocol::{SolveRequest, SolveResponse};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::Mutex;

/// One journal line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum JournalRecord {
    /// Identity stamp written as the first record of a shard-labeled
    /// journal. A fleet shard refuses to resume from a journal stamped
    /// with a different shard id — per-shard journals must never be
    /// silently merged across shards, because each shard's completed
    /// cache is only authoritative for the ids the router sent *it*.
    ShardMeta {
        /// Owning shard's stable name (e.g. `shard-0`).
        shard_id: String,
    },
    /// Request admitted; solve owed.
    Accepted {
        /// The full request, so resume needs no other source.
        request: SolveRequest,
    },
    /// Request finished with this response.
    Completed {
        /// The full response, so duplicate ids replay without solving.
        response: SolveResponse,
    },
}

/// Append handle. One line per [`Journal::append`], fsynced before it
/// returns — the caller may treat a returned `Ok` as durable.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<std::fs::File>,
}

impl Journal {
    /// Opens (creating if missing) `path` for appending.
    pub fn open(path: &Path) -> io::Result<Journal> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal { file: Mutex::new(file) })
    }

    /// Opens `path` for appending as `shard_id`'s journal, stamping a
    /// [`JournalRecord::ShardMeta`] first record when the file is new
    /// (or empty). Existing non-empty journals are left as-is — the
    /// caller is expected to have vetted ownership via
    /// [`JournalState::replay_expecting`] before appending.
    pub fn open_labeled(path: &Path, shard_id: &str) -> io::Result<Journal> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        let journal = Journal { file: Mutex::new(file) };
        let empty = std::fs::metadata(path).map(|m| m.len() == 0).unwrap_or(true);
        if empty {
            journal.append(&JournalRecord::ShardMeta { shard_id: shard_id.to_string() })?;
        }
        Ok(journal)
    }

    /// Appends one record and fsyncs.
    pub fn append(&self, record: &JournalRecord) -> io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        writeln!(file, "{line}")?;
        file.sync_data()
    }
}

/// The state a journal replays to.
#[derive(Debug, Default)]
pub struct JournalState {
    /// Accepted ids with no completion, in acceptance order (the order
    /// the dead server would have solved them). Duplicate accepts of
    /// one id keep the first request.
    pub pending: Vec<SolveRequest>,
    /// Completed responses by id. Duplicate completions of one id keep
    /// the first response, so replaying cannot change an answer.
    pub completed: BTreeMap<String, SolveResponse>,
    /// Whether a torn (unparseable) final line was skipped — the
    /// fingerprint of a crash mid-append.
    pub torn_tail: bool,
    /// Shard id from the journal's [`JournalRecord::ShardMeta`] stamp,
    /// when present. The first stamp wins, like every other record.
    pub shard_id: Option<String>,
}

impl JournalState {
    /// Replays the journal at `path`. Missing file replays to the
    /// empty state (a fresh server with a journal configured but never
    /// written).
    pub fn replay(path: &Path) -> io::Result<JournalState> {
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalState::default()),
            Err(e) => return Err(e),
        };
        let mut state = JournalState::default();
        let mut accepted: BTreeMap<String, usize> = BTreeMap::new();
        let lines: Vec<String> = io::BufReader::new(file).lines().collect::<Result<_, _>>()?;
        let last = lines.len().saturating_sub(1);
        for (lineno, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record: JournalRecord = match serde_json::from_str(line) {
                Ok(r) => r,
                Err(_) if lineno == last => {
                    state.torn_tail = true;
                    continue;
                }
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("journal line {}: {e}", lineno + 1),
                    ));
                }
            };
            match record {
                JournalRecord::ShardMeta { shard_id } => {
                    if state.shard_id.is_none() {
                        state.shard_id = Some(shard_id);
                    }
                }
                JournalRecord::Accepted { request } => {
                    if !accepted.contains_key(&request.id) {
                        accepted.insert(request.id.clone(), state.pending.len());
                        state.pending.push(request);
                    }
                }
                JournalRecord::Completed { response } => {
                    state.completed.entry(response.id.clone()).or_insert(response);
                }
            }
        }
        state.pending.retain(|r| !state.completed.contains_key(&r.id));
        Ok(state)
    }

    /// Replays the journal at `path` and verifies it belongs to
    /// `expected` shard. A journal stamped with a *different* shard id
    /// is rejected loudly — resuming shard B from shard A's journal
    /// would merge two shards' completed caches and silently serve
    /// another shard's answers. Unstamped journals (pre-fleet servers)
    /// replay fine: the stamp is only checked when both sides name a
    /// shard.
    pub fn replay_expecting(path: &Path, expected: &str) -> io::Result<JournalState> {
        let state = JournalState::replay(path)?;
        if let Some(found) = &state.shard_id {
            if found != expected {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "journal {} belongs to shard '{found}', refusing to resume it as \
                         shard '{expected}' — per-shard journals must not be merged",
                        path.display()
                    ),
                ));
            }
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Status;
    use usep_core::{Cost, EventId, InstanceBuilder, Point, TimeInterval, UserId};

    fn request(id: &str) -> SolveRequest {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::new(0, 0), TimeInterval::new(0, 5).unwrap());
        b.user(Point::new(0, 1), Cost::new(10));
        b.utility(EventId(0), UserId(0), 0.9);
        SolveRequest {
            id: id.to_string(),
            instance: std::sync::Arc::new(b.build().unwrap()),
            algorithm: None,
            timeout_ms: None,
            mem_budget_mb: None,
            city: None,
        }
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("usep_journal_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_replay_partitions_pending_and_completed() {
        let dir = tempdir("basic");
        let path = dir.join("wal.jsonl");
        let journal = Journal::open(&path).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("a") }).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("b") }).unwrap();
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare("a", Status::Complete),
            })
            .unwrap();
        let state = JournalState::replay(&path).unwrap();
        assert_eq!(state.pending.len(), 1);
        assert_eq!(state.pending[0].id, "b");
        assert_eq!(state.completed.len(), 1);
        assert_eq!(state.completed["a"].status, Status::Complete);
        assert!(!state.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_replays_empty() {
        let state = JournalState::replay(Path::new("/nonexistent/usep/wal.jsonl")).unwrap();
        assert!(state.pending.is_empty());
        assert!(state.completed.is_empty());
    }

    #[test]
    fn torn_final_line_is_tolerated_but_interior_corruption_is_not() {
        let dir = tempdir("torn");
        let path = dir.join("wal.jsonl");
        let journal = Journal::open(&path).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("a") }).unwrap();
        drop(journal);
        // simulate a crash mid-append: a half-written record at the tail
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(b"{\"Accepted\":{\"requ");
        std::fs::write(&path, &raw).unwrap();
        let state = JournalState::replay(&path).unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.pending.len(), 1);

        // the same garbage *followed by* a valid line is corruption
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(b"\n");
        std::fs::write(&path, &raw).unwrap();
        let journal = Journal::open(&path).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("b") }).unwrap();
        assert!(JournalState::replay(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_is_idempotent_and_duplicate_records_keep_first() {
        let dir = tempdir("idem");
        let path = dir.join("wal.jsonl");
        let journal = Journal::open(&path).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("a") }).unwrap();
        // duplicate accept (a resumed server re-journaling would be a
        // bug, but the replay must still converge)
        journal.append(&JournalRecord::Accepted { request: request("a") }).unwrap();
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare("a", Status::Complete),
            })
            .unwrap();
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare(
                    "a",
                    Status::Failed { panic: "late duplicate must not win".into() },
                ),
            })
            .unwrap();
        let once = JournalState::replay(&path).unwrap();
        let twice = JournalState::replay(&path).unwrap();
        assert_eq!(once.completed["a"].status, Status::Complete);
        assert_eq!(twice.completed["a"].status, Status::Complete);
        assert!(once.pending.is_empty() && twice.pending.is_empty());
        assert_eq!(once.completed.len(), twice.completed.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression: completion records landing *before* their accept
    /// record (a journal assembled from a merge, or a resumed server
    /// finishing an owed solve before any new accept lines). The accept
    /// must not resurrect the id into `pending`, and among duplicate
    /// completions the first record still wins regardless of where the
    /// accept sits between them.
    #[test]
    fn completions_out_of_order_with_accepts_keep_first_and_stay_completed() {
        let dir = tempdir("ooo");
        let path = dir.join("wal.jsonl");
        let journal = Journal::open(&path).unwrap();
        // id "a": Completed → Accepted → Completed (conflicting)
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare("a", Status::Complete),
            })
            .unwrap();
        journal.append(&JournalRecord::Accepted { request: request("a") }).unwrap();
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare(
                    "a",
                    Status::Failed { panic: "late duplicate must not win".into() },
                ),
            })
            .unwrap();
        // id "b": Completed with no accept record at all
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare(
                    "b",
                    Status::Truncated { reason: "deadline".into() },
                ),
            })
            .unwrap();
        // id "c": a genuinely pending accept, to prove retain() is
        // surgical rather than clearing everything
        journal.append(&JournalRecord::Accepted { request: request("c") }).unwrap();

        let state = JournalState::replay(&path).unwrap();
        assert_eq!(state.completed["a"].status, Status::Complete, "first record must win");
        assert!(state.shard_id.is_none(), "unstamped journal has no shard id");
        assert!(
            matches!(state.completed["b"].status, Status::Truncated { .. }),
            "acceptless completion is still an answer"
        );
        assert_eq!(state.pending.len(), 1, "completed ids must not be pending");
        assert_eq!(state.pending[0].id, "c");
        // and replaying again converges to the same verdicts
        let again = JournalState::replay(&path).unwrap();
        assert_eq!(again.completed["a"].status, Status::Complete);
        assert_eq!(again.pending.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression (fleet): shard A's journal replayed as shard B must
    /// be rejected loudly, never silently merged. The same file replays
    /// fine as shard A, or on an unsharded server that does not pass an
    /// expectation at all.
    #[test]
    fn cross_shard_journal_replay_is_rejected_loudly() {
        let dir = tempdir("xshard");
        let path = dir.join("shard-a.wal.jsonl");
        let journal = Journal::open_labeled(&path, "shard-a").unwrap();
        journal.append(&JournalRecord::Accepted { request: request("r1") }).unwrap();
        journal
            .append(&JournalRecord::Completed {
                response: SolveResponse::bare("r1", Status::Complete),
            })
            .unwrap();
        drop(journal);

        // right shard: replays cleanly and sees its own stamp
        let own = JournalState::replay_expecting(&path, "shard-a").unwrap();
        assert_eq!(own.shard_id.as_deref(), Some("shard-a"));
        assert_eq!(own.completed.len(), 1);

        // wrong shard: loud typed error naming both shards
        let err = JournalState::replay_expecting(&path, "shard-b").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("shard-a") && msg.contains("shard-b"), "{msg}");

        // unsharded replay (no expectation) still works — the stamp is
        // data, not a barrier, for pre-fleet tooling reading the file
        let plain = JournalState::replay(&path).unwrap();
        assert_eq!(plain.completed.len(), 1);

        // reopening with the same label must not double-stamp
        let journal = Journal::open_labeled(&path, "shard-a").unwrap();
        journal.append(&JournalRecord::Accepted { request: request("r2") }).unwrap();
        drop(journal);
        let stamps = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .filter(|l| l.contains("ShardMeta"))
            .count();
        assert_eq!(stamps, 1, "reopen must not re-stamp a labeled journal");

        // an unstamped (legacy) journal replays under any expectation
        let legacy = dir.join("legacy.wal.jsonl");
        let journal = Journal::open(&legacy).unwrap();
        journal.append(&JournalRecord::Accepted { request: request("r3") }).unwrap();
        drop(journal);
        let state = JournalState::replay_expecting(&legacy, "shard-b").unwrap();
        assert_eq!(state.pending.len(), 1);
        assert!(state.shard_id.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
