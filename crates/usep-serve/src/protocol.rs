//! Wire types: one JSON object per line, both directions.
//!
//! The framing is deliberately the same JSON-lines shape as the
//! `usep-trace` export and the journal: line-oriented, self-describing,
//! greppable with standard tools. A client sends one [`SolveRequest`]
//! per line and reads one [`SolveResponse`] line back; a connection may
//! carry any number of request/response pairs sequentially.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use usep_core::{Instance, Planning};
use usep_delta::Mutation;

/// A solve request, instance inline.
///
/// The `id` is the idempotence key: the server journals accepted ids
/// and answers a duplicate of an already-completed id from its cache
/// without re-solving. Budget fields are *requests* — the server caps
/// them with its own limits before building the [`usep_guard::SolveBudget`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveRequest {
    /// Client-chosen idempotence key.
    pub id: String,
    /// The instance to plan, shared by reference: cloning a request for
    /// a retry tier or a journal replay copies a pointer, not the
    /// matrices, and the one-shot [`Instance::freeze`] lowering is
    /// shared with it.
    pub instance: Arc<Instance>,
    /// Algorithm name (same names as `usep solve --algorithm`);
    /// the server default applies when absent.
    #[serde(default)]
    pub algorithm: Option<String>,
    /// Requested wall-clock budget for the whole solve (all retry
    /// tiers together), capped server-side.
    #[serde(default)]
    pub timeout_ms: Option<u64>,
    /// Requested per-solve memory ceiling, capped server-side.
    #[serde(default)]
    pub mem_budget_mb: Option<u64>,
    /// Routing label for the fleet router: the city whose shard should
    /// own this request (case-insensitive). A bare `usep serve` shard
    /// ignores it; unlabeled requests fall back to consistent hashing
    /// on the id.
    #[serde(default)]
    pub city: Option<String>,
}

/// How a request ended. Every request gets exactly one of these.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Status {
    /// Some tier ran to its natural end; the planning is final.
    Complete,
    /// Every usable tier was cut short; the planning is the best
    /// constraint-valid prefix found. `reason` is the stable
    /// [`usep_guard::TruncationReason`] name of the *last* trip.
    Truncated {
        /// `deadline`, `memory_ceiling` or `cancelled`.
        reason: String,
    },
    /// The solve panicked; the panic was contained at the request
    /// fence and the server kept serving.
    Failed {
        /// Stringified panic payload.
        panic: String,
    },
    /// Shed at admission: the queue or the memory ledger was full.
    Overloaded {
        /// Queue depth observed at the admission decision.
        queue_depth: usize,
        /// Ledger bytes reserved at the admission decision.
        reserved_bytes: usize,
    },
    /// The request never entered the queue: unparseable, failed
    /// instance validation, or named an unknown algorithm.
    Rejected {
        /// Human-readable cause.
        error: String,
    },
}

impl Status {
    /// Stable one-token description for logs and exit-code mapping.
    pub fn describe(&self) -> String {
        match self {
            Status::Complete => "complete".to_string(),
            Status::Truncated { reason } => format!("truncated:{reason}"),
            Status::Failed { .. } => "failed:panic".to_string(),
            Status::Overloaded { .. } => "overloaded".to_string(),
            Status::Rejected { .. } => "rejected".to_string(),
        }
    }
}

/// Per-phase wall-clock breakdown of one request's life inside the
/// server, reported on every reply that went through the queue.
///
/// The phases partition the server-side latency a client observes:
/// `admission_ms` (parse, screen, admit, journal), `queue_wait_ms`
/// (admitted → picked up by a worker), `solve_ms` (all solver tiers
/// together) and `backoff_ms` (sleeps between retry tiers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Parse + screening + admission + journal fsync, before enqueue.
    #[serde(default)]
    pub admission_ms: f64,
    /// Time spent in the bounded queue waiting for a worker.
    #[serde(default)]
    pub queue_wait_ms: f64,
    /// Wall-clock inside the solver tiers (sum over retries).
    #[serde(default)]
    pub solve_ms: f64,
    /// Wall-clock spent sleeping in retry backoff.
    #[serde(default)]
    pub backoff_ms: f64,
}

/// A control-plane request multiplexed on the solve socket: any line
/// with a `verb` field is interpreted as a control verb instead of a
/// [`SolveRequest`] (solve requests never carry `verb`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ControlRequest {
    /// `"dump"` dumps the flight recorder as one JSON line.
    pub verb: String,
}

/// One `{"verb":"mutate"}` line: the delta-session protocol multiplexed
/// on the solve socket.
///
/// A session is a named warm [`usep_delta::DeltaEngine`] living inside
/// the server. Exactly one of the operation fields is set per line:
///
/// * `open` — cold-solve this instance and keep the warm state under
///   `session`. Idempotent: re-opening an existing session (e.g. after
///   a client retry across a server crash + `--resume`) answers from
///   the live session without re-solving.
/// * `mutation` + `mutation_id` — apply one typed mutation through the
///   bounded-repair path. The `mutation_id` is the exactly-once key:
///   the mutation is journaled *before* it is applied, a duplicate id
///   answers the cached outcome without re-applying, and a resumed
///   server replays the journaled mutations in order to rebuild the
///   warm state.
/// * `query` — report the session's current Ω, drift and repair stats.
/// * `close` — drop the session (journaled, so it stays closed across
///   resume).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MutateRequest {
    /// Always `"mutate"` (the control-plane discriminator).
    pub verb: String,
    /// Client-chosen session name; the scope of all other fields.
    pub session: String,
    /// Open the session over this instance (cold solve + warm state).
    #[serde(default)]
    pub open: Option<Arc<Instance>>,
    /// Drift fraction above which the engine abandons bounded repair
    /// and re-solves cold; only read on `open`. Server default applies
    /// when absent.
    #[serde(default)]
    pub fallback_threshold: Option<f64>,
    /// Exactly-once key for `mutation`; required with it.
    #[serde(default)]
    pub mutation_id: Option<String>,
    /// The typed mutation to apply.
    #[serde(default)]
    pub mutation: Option<Mutation>,
    /// Report the session's current state without mutating it.
    #[serde(default)]
    pub query: bool,
    /// Close the session.
    #[serde(default)]
    pub close: bool,
}

/// The reply to one [`MutateRequest`] line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MutateResponse {
    /// Echo of the session name.
    pub session: String,
    /// Echo of the mutation's exactly-once key, when one was sent.
    #[serde(default)]
    pub mutation_id: Option<String>,
    /// Whether the operation was accepted. A rejected *mutation*
    /// (unknown entity, bad μ, …) leaves the warm state untouched and
    /// reports its reason in `error`.
    pub ok: bool,
    /// Rejection reason when `ok` is false.
    #[serde(default)]
    pub error: Option<String>,
    /// `"opened"`, `"repaired"`, `"fallback"`, `"replayed"`,
    /// `"queried"` or `"closed"` — how the server satisfied the line.
    #[serde(default)]
    pub outcome: Option<String>,
    /// Session Ω after the operation.
    #[serde(default)]
    pub omega: f64,
    /// Drift fraction accrued since the last full solve.
    #[serde(default)]
    pub drift: f64,
    /// Assignments in the session's current planning.
    #[serde(default)]
    pub assignments: u64,
    /// Assignments released by this mutation.
    #[serde(default)]
    pub evicted: u64,
    /// Assignments added by this mutation's repair pass.
    #[serde(default)]
    pub added: u64,
    /// Entities touched by this mutation's bounded repair.
    #[serde(default)]
    pub touched: u64,
    /// Mutations applied to the session so far (including this one).
    #[serde(default)]
    pub mutations: u64,
    /// Of those, how many stayed on the bounded-repair path.
    #[serde(default)]
    pub repairs: u64,
    /// Of those, how many fell back to a full cold resolve.
    #[serde(default)]
    pub fallbacks: u64,
}

impl MutateResponse {
    /// A minimal accepted reply carrying the session echo and the
    /// outcome tag; callers fill in the state fields.
    pub fn accepted(session: impl Into<String>, outcome: &str) -> MutateResponse {
        MutateResponse {
            session: session.into(),
            mutation_id: None,
            ok: true,
            error: None,
            outcome: Some(outcome.to_string()),
            omega: 0.0,
            drift: 0.0,
            assignments: 0,
            evicted: 0,
            added: 0,
            touched: 0,
            mutations: 0,
            repairs: 0,
            fallbacks: 0,
        }
    }

    /// A rejection carrying only the session echo and the reason.
    pub fn rejected(session: impl Into<String>, error: impl Into<String>) -> MutateResponse {
        MutateResponse {
            session: session.into(),
            mutation_id: None,
            ok: false,
            error: Some(error.into()),
            outcome: None,
            omega: 0.0,
            drift: 0.0,
            assignments: 0,
            evicted: 0,
            added: 0,
            touched: 0,
            mutations: 0,
            repairs: 0,
            fallbacks: 0,
        }
    }
}

/// The reply to one [`SolveRequest`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveResponse {
    /// Echo of the request id (empty for unparseable requests).
    pub id: String,
    /// Typed outcome.
    pub status: Status,
    /// Ω of `planning` (0 when there is none).
    #[serde(default)]
    pub omega: f64,
    /// Assignment count of `planning`.
    #[serde(default)]
    pub assignments: u64,
    /// Algorithm that produced `planning` (after degradation).
    #[serde(default)]
    pub executed: Option<String>,
    /// Serve-level retries spent walking down the degradation chain.
    #[serde(default)]
    pub retries: u64,
    /// The planning, for `Complete` and `Truncated` outcomes.
    #[serde(default)]
    pub planning: Option<Planning>,
    /// Server-side per-phase latency breakdown (absent on replies that
    /// never entered the queue: rejected, overloaded, replayed).
    #[serde(default)]
    pub timings: Option<PhaseTimings>,
    /// Name of the shard whose solve produced this response, stamped by
    /// a `--shard-id` worker (and preserved by the fleet router so a
    /// client can see where its request landed after failover). Absent
    /// on unsharded servers and router-synthesized replies.
    #[serde(default)]
    pub shard: Option<String>,
}

impl SolveResponse {
    /// A planning-free response with the given id and status.
    pub fn bare(id: impl Into<String>, status: Status) -> SolveResponse {
        SolveResponse {
            id: id.into(),
            status,
            omega: 0.0,
            assignments: 0,
            executed: None,
            retries: 0,
            planning: None,
            timings: None,
            shard: None,
        }
    }
}

/// Estimated resident footprint of solving `inst`, charged against the
/// admission ledger while the request is queued or in flight. Dominated
/// by the `μ` matrix and the worst-case explicit cost matrices; the
/// per-entity term covers ids, locations and intervals. An estimate —
/// the per-solve `Guard` ceiling, not this, is the hard bound.
pub fn estimate_instance_bytes(inst: &Instance) -> usize {
    let nv = inst.num_events();
    let nu = inst.num_users();
    let mu = nv.saturating_mul(nu).saturating_mul(8);
    let costs = nv.saturating_mul(nu + nv).saturating_mul(4);
    let entities = (nv + nu).saturating_mul(48);
    mu.saturating_add(costs).saturating_add(entities)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_instance() -> Instance {
        let mut b = usep_core::InstanceBuilder::new();
        b.event(
            2,
            usep_core::Point::new(0, 0),
            usep_core::TimeInterval::new(0, 10).unwrap(),
        );
        b.user(usep_core::Point::new(1, 1), usep_core::Cost::new(50));
        b.utility(usep_core::EventId(0), usep_core::UserId(0), 0.5);
        b.build().unwrap()
    }

    #[test]
    fn request_roundtrips_with_and_without_optional_fields() {
        let full = SolveRequest {
            id: "r1".into(),
            instance: Arc::new(tiny_instance()),
            algorithm: Some("dedpo".into()),
            timeout_ms: Some(500),
            mem_budget_mb: Some(64),
            city: Some("vancouver".into()),
        };
        let json = serde_json::to_string(&full).unwrap();
        let back: SolveRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, "r1");
        assert_eq!(back.algorithm.as_deref(), Some("dedpo"));
        assert_eq!(back.timeout_ms, Some(500));
        assert_eq!(back.city.as_deref(), Some("vancouver"));
        assert_eq!(back.instance, full.instance);

        // optional fields may be omitted entirely on the wire
        let sparse = format!(
            r#"{{"id":"r2","instance":{}}}"#,
            serde_json::to_string(&tiny_instance()).unwrap()
        );
        let back: SolveRequest = serde_json::from_str(&sparse).unwrap();
        assert_eq!(back.id, "r2");
        assert!(back.algorithm.is_none());
        assert!(back.timeout_ms.is_none());
        assert!(back.mem_budget_mb.is_none());
        assert!(back.city.is_none());
    }

    #[test]
    fn every_status_roundtrips() {
        let statuses = [
            Status::Complete,
            Status::Truncated { reason: "memory_ceiling".into() },
            Status::Failed { panic: "boom".into() },
            Status::Overloaded { queue_depth: 9, reserved_bytes: 1024 },
            Status::Rejected { error: "bad instance".into() },
        ];
        for status in statuses {
            let resp = SolveResponse::bare("x", status.clone());
            let json = serde_json::to_string(&resp).unwrap();
            let back: SolveResponse = serde_json::from_str(&json).unwrap();
            assert_eq!(back.status, status, "{json}");
        }
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(Status::Complete.describe(), "complete");
        assert_eq!(
            Status::Truncated { reason: "deadline".into() }.describe(),
            "truncated:deadline"
        );
        assert_eq!(Status::Failed { panic: "p".into() }.describe(), "failed:panic");
        assert_eq!(
            Status::Overloaded { queue_depth: 0, reserved_bytes: 0 }.describe(),
            "overloaded"
        );
    }

    #[test]
    fn timings_roundtrip_and_stay_optional_on_the_wire() {
        let mut resp = SolveResponse::bare("t", Status::Complete);
        resp.timings = Some(PhaseTimings {
            admission_ms: 0.5,
            queue_wait_ms: 1.25,
            solve_ms: 10.0,
            backoff_ms: 0.0,
        });
        let json = serde_json::to_string(&resp).unwrap();
        let back: SolveResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.timings.unwrap().queue_wait_ms, 1.25);

        // old-format responses without the field still parse
        let legacy = r#"{"id":"t","status":"Complete"}"#;
        let back: SolveResponse = serde_json::from_str(legacy).unwrap();
        assert!(back.timings.is_none());
        assert!(back.shard.is_none());
    }

    #[test]
    fn shard_stamp_roundtrips() {
        let mut resp = SolveResponse::bare("s", Status::Complete);
        resp.shard = Some("shard-vancouver".into());
        let json = serde_json::to_string(&resp).unwrap();
        let back: SolveResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shard.as_deref(), Some("shard-vancouver"));
    }

    #[test]
    fn control_lines_are_distinguishable_from_solve_requests() {
        let ctl: ControlRequest = serde_json::from_str(r#"{"verb":"dump"}"#).unwrap();
        assert_eq!(ctl.verb, "dump");
        // a control line is not a valid solve request…
        assert!(serde_json::from_str::<SolveRequest>(r#"{"verb":"dump"}"#).is_err());
        // …and a solve request line is not a control line
        let solve = format!(
            r#"{{"id":"r","instance":{}}}"#,
            serde_json::to_string(&tiny_instance()).unwrap()
        );
        assert!(serde_json::from_str::<ControlRequest>(&solve).is_err());
    }

    #[test]
    fn mutate_lines_parse_with_each_operation_shape() {
        let open = format!(
            r#"{{"verb":"mutate","session":"s1","open":{}}}"#,
            serde_json::to_string(&tiny_instance()).unwrap()
        );
        let req: MutateRequest = serde_json::from_str(&open).unwrap();
        assert_eq!(req.session, "s1");
        assert!(req.open.is_some() && req.mutation.is_none() && !req.query && !req.close);

        let mutate = r#"{"verb":"mutate","session":"s1","mutation_id":"m1",
            "mutation":{"CapacityChange":{"event":0,"capacity":3}}}"#;
        let req: MutateRequest = serde_json::from_str(mutate).unwrap();
        assert_eq!(req.mutation_id.as_deref(), Some("m1"));
        assert!(matches!(
            req.mutation,
            Some(Mutation::CapacityChange { event: 0, capacity: 3 })
        ));

        let query: MutateRequest =
            serde_json::from_str(r#"{"verb":"mutate","session":"s1","query":true}"#).unwrap();
        assert!(query.query);
        let close: MutateRequest =
            serde_json::from_str(r#"{"verb":"mutate","session":"s1","close":true}"#).unwrap();
        assert!(close.close);

        // a mutate line is still a ControlRequest (that is how the
        // server routes it off the solve path)
        let ctl: ControlRequest = serde_json::from_str(mutate).unwrap();
        assert_eq!(ctl.verb, "mutate");
    }

    #[test]
    fn mutate_response_roundtrips() {
        let mut resp = MutateResponse::rejected("s1", "unknown session");
        assert!(!resp.ok);
        resp.ok = true;
        resp.error = None;
        resp.outcome = Some("repaired".into());
        resp.omega = 4.25;
        resp.mutation_id = Some("m9".into());
        let json = serde_json::to_string(&resp).unwrap();
        let back: MutateResponse = serde_json::from_str(&json).unwrap();
        assert!(back.ok);
        assert_eq!(back.outcome.as_deref(), Some("repaired"));
        assert_eq!(back.omega, 4.25);
        assert_eq!(back.mutation_id.as_deref(), Some("m9"));
    }

    #[test]
    fn footprint_estimate_scales_with_the_matrix() {
        let small = estimate_instance_bytes(&tiny_instance());
        assert!(small > 0);
        // μ dominates: 100×1000 ≈ 800 KB just for the matrix
        let mut b = usep_core::InstanceBuilder::new();
        for i in 0..100 {
            let s = i64::from(i) * 20;
            b.event(
                5,
                usep_core::Point::new(i, 0),
                usep_core::TimeInterval::new(s, s + 10).unwrap(),
            );
        }
        for j in 0..1000 {
            b.user(usep_core::Point::new(j % 50, 1), usep_core::Cost::new(100));
        }
        let big = b.build().unwrap();
        assert!(estimate_instance_bytes(&big) >= 100 * 1000 * 8);
        assert!(estimate_instance_bytes(&big) > small);
    }
}
