//! The serve loop: accept, admit, journal, solve behind a fence, reply.
//!
//! Thread layout:
//!
//! * one **accept** thread owning the `TcpListener`;
//! * one **connection** thread per client connection, which parses,
//!   validates, admits and journals requests, then blocks on the
//!   reply channel and writes the response line;
//! * `workers` **solver** threads draining one shared job queue. Each
//!   job runs behind a `catch_unwind` fence with the serve-level
//!   retry/degradation loop inside it.
//!
//! Shutdown is cooperative: set the flag, poke the listener with a
//! dummy connection, let connection threads finish their in-flight
//! request, and let the workers drain the queue until the job channel
//! disconnects. Nothing is dropped on a *graceful* stop; on a crash
//! (`SIGKILL`) the journal carries the pending set instead.

use crate::admission::{Admission, ShedReason, Ticket};
use crate::backoff::{seed_from_id, RetryPolicy};
use crate::io::{JournalIo, StdIo};
use crate::journal::{Journal, JournalRecord, JournalState};
use crate::obs::ServeMetrics;
use crate::protocol::{
    estimate_instance_bytes, ControlRequest, MutateRequest, MutateResponse, PhaseTimings,
    SolveRequest, SolveResponse, Status,
};
use std::io::{BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use usep_algos::{solve_guarded, Algorithm, GuardedSolver};
use usep_core::Planning;
use usep_delta::{DeltaConfig, DeltaEngine, Mutation, RepairKind};
use usep_guard::{Guard, SolveBudget, SolveOutcome, TruncationReason};
use usep_obs::http;
use usep_trace::{json, Counter, Probe, RequestCtx, RequestProbe, TraceSink};

/// Server configuration. The defaults are sized for tests and small
/// deployments; production callers should size `queue_capacity` and
/// `max_reserved_bytes` to their tail latency and RAM.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (the bound address
    /// is on the [`ServerHandle`]).
    pub addr: String,
    /// Solver threads draining the queue.
    pub workers: usize,
    /// Bounded queue slots (queued + solving).
    pub queue_capacity: usize,
    /// Byte capacity of the admission ledger.
    pub max_reserved_bytes: usize,
    /// Hard server-side cap on a request's wall-clock budget; also the
    /// budget for requests that ask for none. The server never runs an
    /// unbounded solve.
    pub max_timeout_ms: u64,
    /// Server-side cap on a request's memory ceiling. `None` leaves
    /// requests without one uncapped (the admission ledger still
    /// bounds aggregate footprint).
    pub max_mem_budget_bytes: Option<usize>,
    /// Algorithm for requests that name none.
    pub default_algorithm: Algorithm,
    /// Write-ahead journal path; `None` disables durability.
    pub journal: Option<PathBuf>,
    /// Journal storage backend override. When set, it wins over
    /// `journal`: the write-ahead log goes through this [`JournalIo`]
    /// instead of a file. This is how `usep-chaos` slots its seeded
    /// `FaultyIo` (torn writes, lying fsyncs, bit rot, ENOSPC) under a
    /// real server without the server knowing.
    pub journal_io: Option<Arc<dyn JournalIo>>,
    /// Replay the journal before serving: re-enqueue accepted-but-
    /// incomplete requests, remember completed ids.
    pub resume: bool,
    /// Backoff between degradation-chain retries.
    pub retry: RetryPolicy,
    /// Read timeout on client connections.
    pub conn_read_timeout: Duration,
    /// Stop (gracefully) after this many journaled completions —
    /// resumed solves count. For tests and drain scripts.
    pub max_requests: Option<u64>,
    /// Fault injection: arm every solve's guard with a chaos trip
    /// (memory-ceiling reason) at this checkpoint count.
    pub chaos_trip: Option<u64>,
    /// Fault injection: panic inside the fence on every Nth solve.
    pub chaos_panic_every: Option<u64>,
    /// Fault injection: sleep this long inside each solve, to widen
    /// the kill window for crash/recovery tests.
    pub chaos_delay_ms: u64,
    /// Bind address for the metrics/health HTTP listener (`/metrics`,
    /// `/healthz`, `/buildinfo`, `/flightrec`); `None` disables it.
    /// Use port 0 to let the OS pick ([`ServerHandle::metrics_addr`]
    /// reports the bound address).
    pub metrics_addr: Option<String>,
    /// Ring-buffer slots in the flight recorder (last-N annotated
    /// events, dumped via the `dump` verb, on contained panics, and at
    /// shutdown).
    pub flight_recorder_capacity: usize,
    /// Stable shard name when this server runs as a fleet worker. The
    /// journal is stamped with it (and resume refuses a journal stamped
    /// with a *different* shard), and every response carries it so the
    /// router and clients can see which shard solved what.
    pub shard_id: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            max_reserved_bytes: 256 * 1024 * 1024,
            max_timeout_ms: 30_000,
            max_mem_budget_bytes: None,
            default_algorithm: Algorithm::DeDPO,
            journal: None,
            journal_io: None,
            resume: false,
            retry: RetryPolicy::default(),
            conn_read_timeout: Duration::from_secs(30),
            max_requests: None,
            chaos_trip: None,
            chaos_panic_every: None,
            chaos_delay_ms: 0,
            metrics_addr: None,
            flight_recorder_capacity: 256,
            shard_id: None,
        }
    }
}

struct Job {
    request: SolveRequest,
    /// Admission hold; `None` for journal-resumed jobs (their client
    /// is gone, nothing is queued on their behalf).
    ticket: Option<Ticket>,
    /// Where the response goes; `None` for resumed jobs (journal only).
    reply: Option<crossbeam::channel::Sender<SolveResponse>>,
    /// When the job entered the queue (queue-wait phase starts here).
    enqueued_at: Instant,
    /// Wall-clock spent in parse/screen/admit/journal before enqueue.
    admission_ms: f64,
}

/// One live delta session: the warm engine plus the exactly-once
/// response cache keyed by mutation id. A duplicate mutation id —
/// client retry, or a re-send across a crash + `--resume` — answers
/// the cached outcome without touching the engine.
struct DeltaSession {
    engine: DeltaEngine,
    applied: std::collections::BTreeMap<String, MutateResponse>,
}

struct Inner {
    cfg: ServeConfig,
    admission: Arc<Admission>,
    journal: Option<Journal>,
    completed: Mutex<std::collections::BTreeMap<String, SolveResponse>>,
    /// Live delta sessions by name ({"verb":"mutate"} state).
    delta: Mutex<std::collections::BTreeMap<String, DeltaSession>>,
    sink: Arc<TraceSink>,
    obs: Arc<ServeMetrics>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    solves_started: AtomicU64,
    completions: AtomicU64,
}

/// A running server. Dropping the handle does not stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::wait`].
pub struct ServerHandle {
    inner: Arc<Inner>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
    http: Mutex<Option<http::HttpHandle>>,
    metrics_addr: Option<SocketAddr>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Requests resumed from the journal at startup.
    pub fn resumed(&self) -> u64 {
        self.inner.sink.counter(Counter::ServeResume)
    }

    /// Snapshot of one serve/solver counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.inner.sink.counter(c)
    }

    /// The trace sink collecting the server's counters and histograms.
    pub fn sink(&self) -> &TraceSink {
        &self.inner.sink
    }

    /// The metrics plane: registry, flight recorder and hot-path cells.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.inner.obs
    }

    /// The bound metrics listener address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Requests a graceful stop: no new connections, queue drained.
    pub fn shutdown(&self) {
        self.inner.initiate_shutdown();
    }

    /// Blocks until every thread has exited (after [`Self::shutdown`]
    /// or a `max_requests` stop), then stops the metrics listener and
    /// dumps the flight recorder to stderr — the service's black box
    /// survives into the logs on every stop path.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(mut h) = self.http.lock().unwrap_or_else(|p| p.into_inner()).take() {
            h.shutdown();
        }
        let obs = &self.inner.obs;
        obs.recorder.record("shutdown", None, "server drained");
        eprintln!("usep-serve: flight recorder at shutdown: {}", obs.recorder.dump_json());
    }
}

impl Inner {
    fn initiate_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // unblock the accept() call
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn journal_append(&self, record: &JournalRecord) -> std::io::Result<()> {
        match &self.journal {
            Some(j) => j.append(record),
            None => Ok(()),
        }
    }
}

/// The server type; [`Server::start`] is the only entry point.
pub struct Server;

impl Server {
    /// Binds, replays the journal when resuming, spawns the worker and
    /// accept threads, and returns the running server's handle.
    pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
        // Resolve the journal backend: an explicit JournalIo override
        // wins (fault injection, tests); otherwise a path becomes the
        // production StdIo; otherwise durability is off.
        let journal_io: Option<Arc<dyn JournalIo>> = match (&cfg.journal_io, &cfg.journal) {
            (Some(io), _) => Some(Arc::clone(io)),
            (None, Some(path)) => Some(Arc::new(StdIo::open(path)?)),
            (None, None) => None,
        };
        let mut resumed_state = match (&journal_io, cfg.resume) {
            (Some(io), true) => match &cfg.shard_id {
                Some(shard) => JournalState::replay_io_expecting(io.as_ref(), shard)?,
                None => JournalState::replay_io(io.as_ref())?,
            },
            (None, true) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "resume requested without a journal path",
                ));
            }
            _ => JournalState::default(),
        };
        let journal = journal_io
            .map(|io| Journal::from_io(io, cfg.shard_id.as_deref()))
            .transpose()?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        let admission = Arc::new(Admission::new(cfg.queue_capacity, cfg.max_reserved_bytes));
        let sink = Arc::new(TraceSink::new());
        let obs = Arc::new(ServeMetrics::new(
            Arc::clone(&sink),
            Arc::clone(&admission),
            cfg.flight_recorder_capacity,
        ));

        // The metrics plane listens on its own socket so scrapes never
        // compete with solve traffic for the accept loop.
        let (http_handle, metrics_addr) = match &cfg.metrics_addr {
            Some(maddr) => {
                let handle = http::serve(maddr, metrics_routes(&obs, &cfg, addr))?;
                let bound = handle.addr();
                (Some(handle), Some(bound))
            }
            None => (None, None),
        };

        // Surface what replay had to survive, then compact: the resumed
        // state is re-snapshotted as one generation-stamped header plus
        // the live records, atomically — so journals shrink instead of
        // growing without bound across --resume cycles, and quarantined
        // rot does not ride along forever.
        if resumed_state.quarantined > 0 {
            sink.count(Counter::JournalQuarantine, resumed_state.quarantined);
            obs.recorder.record(
                "quarantine",
                None,
                format!("{} corrupt journal record(s) skipped on replay", resumed_state.quarantined),
            );
            eprintln!(
                "usep-serve: quarantined {} corrupt journal record(s) on replay",
                resumed_state.quarantined
            );
        }
        if cfg.resume {
            if let Some(j) = &journal {
                match j.compact(&resumed_state) {
                    Ok(()) => {
                        sink.count(Counter::JournalCompaction, 1);
                        obs.recorder.record(
                            "compact",
                            None,
                            format!(
                                "journal compacted to generation {} ({} pending, {} completed)",
                                resumed_state.generation + 1,
                                resumed_state.pending.len(),
                                resumed_state.completed.len()
                            ),
                        );
                    }
                    // Non-fatal: an append-only journal that cannot be
                    // compacted is still a correct journal, just a big one.
                    Err(e) => eprintln!("usep-serve: journal compaction failed: {e}"),
                }
            }
        }

        // Rebuild delta-session warm state from the journal: re-run
        // each open session's cold solve, then re-apply its journaled
        // mutations in acceptance order. The engine is deterministic,
        // so the rebuilt warm state (and every cached per-mutation
        // outcome) is exactly what the dead server held.
        let mut delta_map = std::collections::BTreeMap::new();
        for (name, s) in std::mem::take(&mut resumed_state.delta_sessions) {
            let engine = DeltaEngine::new(
                (*s.instance).clone(),
                DeltaConfig { fallback_threshold: s.fallback_threshold },
                &*sink,
            );
            let mut session = DeltaSession { engine, applied: Default::default() };
            for (mutation_id, mutation) in &s.mutations {
                apply_session_mutation(&name, &mut session, mutation_id, mutation, &*sink);
            }
            obs.recorder.record(
                "delta_resume",
                None,
                format!(
                    "session '{name}' rebuilt: {} journaled mutation(s) re-applied, Ω={:.3}",
                    s.mutations.len(),
                    session.engine.omega()
                ),
            );
            delta_map.insert(name, session);
        }

        let inner = Arc::new(Inner {
            admission,
            journal,
            completed: Mutex::new(resumed_state.completed.into_iter().collect()),
            delta: Mutex::new(delta_map),
            sink,
            obs,
            shutdown: AtomicBool::new(false),
            addr,
            solves_started: AtomicU64::new(0),
            completions: AtomicU64::new(0),
            cfg,
        });
        if resumed_state.torn_tail {
            eprintln!("usep-serve: journal had a torn final line (crash mid-append); ignored");
        }

        let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();

        // Re-enqueue in-flight work from the journal before accepting
        // any traffic, preserving the dead server's acceptance order.
        for request in resumed_state.pending {
            inner.sink.count(Counter::ServeResume, 1);
            inner.obs.recorder.record("resume", Some(&request.id), "re-enqueued from journal");
            let _ = job_tx.send(Job {
                request,
                ticket: None,
                reply: None,
                enqueued_at: Instant::now(),
                admission_ms: 0.0,
            });
        }

        let worker_threads: Vec<_> = (0..inner.cfg.workers.max(1))
            .map(|_| {
                let rx = job_rx.clone();
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        process_job(&inner, job);
                    }
                })
            })
            .collect();
        drop(job_rx);

        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&accept_inner, &listener, job_tx);
        });

        Ok(ServerHandle {
            inner,
            accept_thread: Some(accept_thread),
            worker_threads,
            http: Mutex::new(http_handle),
            metrics_addr,
        })
    }
}

/// The metrics listener's path router: exposition, liveness, build
/// identity, and the flight-recorder dump.
fn metrics_routes(obs: &Arc<ServeMetrics>, cfg: &ServeConfig, solve_addr: SocketAddr) -> http::Handler {
    let registry = Arc::clone(&obs.registry);
    let recorder = Arc::clone(&obs.recorder);
    let buildinfo = json::Value::Map(vec![
        ("service".to_string(), json::Value::Str("usep-serve".to_string())),
        ("version".to_string(), json::Value::Str(env!("CARGO_PKG_VERSION").to_string())),
        ("solve_addr".to_string(), json::Value::Str(solve_addr.to_string())),
        ("workers".to_string(), json::Value::U64(cfg.workers.max(1) as u64)),
        ("queue_capacity".to_string(), json::Value::U64(cfg.queue_capacity as u64)),
        (
            "default_algorithm".to_string(),
            json::Value::Str(cfg.default_algorithm.name().to_string()),
        ),
        (
            "shard".to_string(),
            json::Value::Str(cfg.shard_id.clone().unwrap_or_default()),
        ),
    ])
    .render();
    Box::new(move |path| match path {
        "/metrics" => Some(http::Response::text(registry.render())),
        "/healthz" => Some(http::Response::text("ok\n")),
        "/buildinfo" => Some(http::Response::json(buildinfo.clone())),
        "/flightrec" => Some(http::Response::json(recorder.dump_json())),
        _ => None,
    })
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener, job_tx: crossbeam::channel::Sender<Job>) {
    let mut conn_threads = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                eprintln!("usep-serve: accept error: {e}");
                continue;
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let inner = Arc::clone(inner);
        let job_tx = job_tx.clone();
        conn_threads.push(std::thread::spawn(move || {
            handle_connection(&inner, stream, &job_tx);
        }));
    }
    // finish in-flight connections before letting the job channel
    // disconnect, so every admitted request gets its response line
    for t in conn_threads {
        let _ = t.join();
    }
}

fn write_response(stream: &mut TcpStream, response: &SolveResponse) -> std::io::Result<()> {
    let line = serde_json::to_string(response)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(stream, "{line}")?;
    stream.flush()
}

/// Parses and pre-validates one request line. `Err` is the typed
/// rejection to send back.
fn screen_request(line: &str) -> Result<SolveRequest, Box<SolveResponse>> {
    let request: SolveRequest = serde_json::from_str(line).map_err(|e| {
        Box::new(SolveResponse::bare("", Status::Rejected { error: format!("parse: {e}") }))
    })?;
    if request.id.is_empty() {
        return Err(Box::new(SolveResponse::bare(
            "",
            Status::Rejected { error: "empty request id".to_string() },
        )));
    }
    if let Some(name) = &request.algorithm {
        if Algorithm::parse(name).is_none() {
            return Err(Box::new(SolveResponse::bare(
                request.id.clone(),
                Status::Rejected { error: format!("unknown algorithm '{name}'") },
            )));
        }
    }
    if let Err(e) = request.instance.validate() {
        return Err(Box::new(SolveResponse::bare(
            request.id.clone(),
            Status::Rejected { error: format!("invalid instance: {e}") },
        )));
    }
    // Lower to the flat SoA view once, here on the admission path: every
    // retry tier and journal replay shares the cached lowering through
    // the request's `Arc<Instance>` instead of re-freezing per attempt.
    request.instance.freeze();
    Ok(request)
}

fn handle_connection(
    inner: &Arc<Inner>,
    mut stream: TcpStream,
    job_tx: &crossbeam::channel::Sender<Job>,
) {
    // Short read timeout as a poll interval: an idle connection is
    // dropped after `conn_read_timeout` of silence, and a graceful
    // shutdown is never held hostage by an open idle connection.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = std::io::BufReader::new(read_half);
    let mut line = String::new();
    'conn: loop {
        line.clear();
        let mut idle = Instant::now();
        let mut seen = 0;
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => break 'conn, // client closed
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // mid-line bytes stay in `line`; keep appending
                    if line.len() > seen {
                        seen = line.len();
                        idle = Instant::now();
                    }
                    if inner.shutdown.load(Ordering::SeqCst)
                        || idle.elapsed() >= inner.cfg.conn_read_timeout
                    {
                        break 'conn;
                    }
                }
                Err(_) => break 'conn, // reset
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let admission_started = Instant::now();
        let obs = &inner.obs;

        // Control plane: any line carrying a `verb` is a control
        // request, not a solve (solve requests never have the field).
        if let Ok(ctl) = serde_json::from_str::<ControlRequest>(&line) {
            let reply = match ctl.verb.as_str() {
                "dump" => {
                    obs.recorder.record("dump", None, "flight recorder dumped on request");
                    obs.recorder.dump_json()
                }
                "mutate" => {
                    let response = match serde_json::from_str::<MutateRequest>(&line) {
                        Ok(req) => handle_mutate(inner, req),
                        Err(e) => MutateResponse::rejected("", format!("parse: {e}")),
                    };
                    serde_json::to_string(&response).unwrap_or_default()
                }
                other => serde_json::to_string(&SolveResponse::bare(
                    "",
                    Status::Rejected { error: format!("unknown verb '{other}'") },
                ))
                .unwrap_or_default(),
            };
            if writeln!(stream, "{reply}").and_then(|()| stream.flush()).is_err() {
                break;
            }
            continue;
        }

        obs.requests.fetch_add(1, Ordering::Relaxed);
        let request = match screen_request(&line) {
            Ok(r) => r,
            Err(rejection) => {
                obs.rejected.fetch_add(1, Ordering::Relaxed);
                let id = if rejection.id.is_empty() { None } else { Some(rejection.id.as_str()) };
                let detail = match &rejection.status {
                    Status::Rejected { error } => error.clone(),
                    s => s.describe(),
                };
                obs.recorder.record("reject", id, detail);
                if write_response(&mut stream, &rejection).is_err() {
                    break;
                }
                continue;
            }
        };

        // Idempotent replay: a completed id answers from the journal
        // cache, solving nothing.
        let cached = inner
            .completed
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&request.id)
            .cloned();
        if let Some(response) = cached {
            inner.sink.count(Counter::ServeReplay, 1);
            obs.recorder.record("replay", Some(&request.id), "answered from completion cache");
            if write_response(&mut stream, &response).is_err() {
                break;
            }
            continue;
        }

        // Admission: queue slot + estimated bytes, or shed.
        let estimate = estimate_instance_bytes(&request.instance);
        let ticket = match inner.admission.try_admit(estimate) {
            Ok(t) => t,
            Err(reason) => {
                inner.sink.count(Counter::ServeShed, 1);
                let cell = match reason {
                    ShedReason::QueueFull => &obs.shed_queue_full,
                    ShedReason::MemoryPressure => &obs.shed_memory,
                };
                cell.fetch_add(1, Ordering::Relaxed);
                let (queue_depth, reserved_bytes) =
                    (inner.admission.depth(), inner.admission.reserved_bytes());
                obs.recorder.record(
                    "shed",
                    Some(&request.id),
                    format!("{reason:?}: depth={queue_depth} reserved={reserved_bytes}"),
                );
                let response = SolveResponse::bare(
                    request.id.clone(),
                    Status::Overloaded { queue_depth, reserved_bytes },
                );
                if write_response(&mut stream, &response).is_err() {
                    break;
                }
                continue;
            }
        };

        // Write-ahead: the accept record is durable before the solve
        // can begin; a crash after this point re-enqueues on resume.
        // A failed append (ENOSPC, dead disk) sheds THIS request with a
        // typed Failed response — the connection stays up and the next
        // request gets its own chance, because a full disk is the
        // request's problem, not the TCP session's.
        if let Err(e) =
            inner.journal_append(&JournalRecord::Accepted { request: request.clone() })
        {
            inner.sink.count(Counter::ServeJournalFail, 1);
            obs.failed_journal.fetch_add(1, Ordering::Relaxed);
            obs.recorder
                .record("journal_fail", Some(&request.id), format!("accept append: {e}"));
            let response = SolveResponse::bare(
                request.id.clone(),
                Status::Failed { panic: format!("journal unavailable: {e}") },
            );
            if write_response(&mut stream, &response).is_err() {
                break;
            }
            continue; // ticket drops, slot returns
        }
        inner.sink.count(Counter::ServeAccept, 1);
        inner.sink.record("serve.queue_depth", inner.admission.depth() as f64);
        obs.recorder.record(
            "admit",
            Some(&request.id),
            format!("estimate={estimate}B depth={}", inner.admission.depth()),
        );

        let (reply_tx, reply_rx) = crossbeam::channel::unbounded::<SolveResponse>();
        if job_tx
            .send(Job {
                request,
                ticket: Some(ticket),
                reply: Some(reply_tx),
                enqueued_at: Instant::now(),
                admission_ms: admission_started.elapsed().as_secs_f64() * 1e3,
            })
            .is_err()
        {
            break; // workers gone: server is shutting down
        }
        match reply_rx.recv() {
            Ok(response) => {
                if write_response(&mut stream, &response).is_err() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Snapshot reply for open/query/replayed-open: the session's current
/// Ω, drift and lifetime repair stats, no per-mutation fields.
fn session_snapshot(name: &str, session: &DeltaSession, outcome: &str) -> MutateResponse {
    let stats = session.engine.stats();
    MutateResponse {
        omega: session.engine.omega(),
        drift: session.engine.drift(),
        assignments: session.engine.planning().num_assignments() as u64,
        mutations: stats.mutations,
        repairs: stats.repairs,
        fallbacks: stats.fallbacks,
        ..MutateResponse::accepted(name, outcome)
    }
}

/// Applies one (already-journaled) mutation to a session's engine and
/// caches the outcome under its exactly-once key. Shared between the
/// live mutate path and journal replay at startup, so a resumed server
/// rebuilds byte-identical cached responses.
fn apply_session_mutation(
    name: &str,
    session: &mut DeltaSession,
    mutation_id: &str,
    mutation: &Mutation,
    probe: &dyn Probe,
) -> MutateResponse {
    let response = match session.engine.apply(mutation, probe) {
        Ok(out) => {
            let outcome = match out.kind {
                RepairKind::Repaired => "repaired",
                RepairKind::Fallback => "fallback",
            };
            MutateResponse {
                mutation_id: Some(mutation_id.to_string()),
                evicted: out.evicted as u64,
                added: out.added as u64,
                touched: out.touched as u64,
                ..session_snapshot(name, session, outcome)
            }
        }
        // a rejected mutation leaves the warm state untouched; the
        // rejection is still cached so a duplicate answers identically
        Err(e) => MutateResponse {
            mutation_id: Some(mutation_id.to_string()),
            omega: session.engine.omega(),
            drift: session.engine.drift(),
            ..MutateResponse::rejected(name, format!("mutation rejected: {e}"))
        },
    };
    session.applied.insert(mutation_id.to_string(), response.clone());
    response
}

/// Serves one `{"verb":"mutate"}` line: journal first, engine second,
/// exactly-once on the client's mutation id. Open and close are
/// idempotent; a duplicate mutation id answers its cached outcome
/// verbatim without touching the engine.
fn handle_mutate(inner: &Inner, req: MutateRequest) -> MutateResponse {
    let obs = &inner.obs;
    let mut sessions = inner.delta.lock().unwrap_or_else(|p| p.into_inner());

    if let Some(instance) = &req.open {
        if let Some(session) = sessions.get(&req.session) {
            // idempotent re-open: the client retrying across a crash
            // finds its session already rebuilt from the journal
            inner.sink.count(Counter::ServeReplay, 1);
            obs.recorder.record(
                "delta_open",
                None,
                format!("session '{}' already open; answered from live state", req.session),
            );
            return session_snapshot(&req.session, session, "replayed");
        }
        if let Err(e) = instance.validate() {
            return MutateResponse::rejected(&req.session, format!("invalid instance: {e}"));
        }
        let threshold =
            req.fallback_threshold.unwrap_or(DeltaConfig::default().fallback_threshold);
        if let Err(e) = inner.journal_append(&JournalRecord::DeltaOpen {
            session: req.session.clone(),
            instance: Arc::clone(instance),
            fallback_threshold: threshold,
        }) {
            inner.sink.count(Counter::ServeJournalFail, 1);
            obs.failed_journal.fetch_add(1, Ordering::Relaxed);
            obs.recorder.record("journal_fail", None, format!("delta open append: {e}"));
            return MutateResponse::rejected(&req.session, format!("journal unavailable: {e}"));
        }
        let engine = DeltaEngine::new(
            (**instance).clone(),
            DeltaConfig { fallback_threshold: threshold },
            &*inner.sink,
        );
        let session = DeltaSession { engine, applied: Default::default() };
        let response = session_snapshot(&req.session, &session, "opened");
        obs.recorder.record(
            "delta_open",
            None,
            format!("session '{}' opened: Ω={:.3}", req.session, response.omega),
        );
        sessions.insert(req.session.clone(), session);
        return response;
    }

    if req.close {
        if let Err(e) =
            inner.journal_append(&JournalRecord::DeltaClose { session: req.session.clone() })
        {
            inner.sink.count(Counter::ServeJournalFail, 1);
            obs.failed_journal.fetch_add(1, Ordering::Relaxed);
            obs.recorder.record("journal_fail", None, format!("delta close append: {e}"));
            return MutateResponse::rejected(&req.session, format!("journal unavailable: {e}"));
        }
        let existed = sessions.remove(&req.session).is_some();
        obs.recorder.record("delta_close", None, format!("session '{}' closed", req.session));
        // closing an unknown session is the idempotent no-op a client
        // retrying a lost close reply needs
        return MutateResponse::accepted(&req.session, if existed { "closed" } else { "replayed" });
    }

    if let (Some(mutation_id), Some(mutation)) = (&req.mutation_id, &req.mutation) {
        let Some(session) = sessions.get_mut(&req.session) else {
            return MutateResponse::rejected(&req.session, "unknown session (open it first)");
        };
        if let Some(cached) = session.applied.get(mutation_id) {
            // exactly-once: the duplicate answers the cached outcome
            // verbatim, engine untouched
            inner.sink.count(Counter::ServeReplay, 1);
            obs.recorder.record(
                "delta_replay",
                Some(mutation_id),
                "duplicate mutation answered from the exactly-once cache",
            );
            return cached.clone();
        }
        // WAL before apply: the mutation is durable before the engine
        // sees it, so a crash between the two replays it on resume
        if let Err(e) = inner.journal_append(&JournalRecord::DeltaMutate {
            session: req.session.clone(),
            mutation_id: mutation_id.clone(),
            mutation: mutation.clone(),
        }) {
            inner.sink.count(Counter::ServeJournalFail, 1);
            obs.failed_journal.fetch_add(1, Ordering::Relaxed);
            obs.recorder.record("journal_fail", Some(mutation_id), format!("delta append: {e}"));
            // NOT cached: the mutation never became durable, so a
            // retry must get a fresh chance
            return MutateResponse::rejected(&req.session, format!("journal unavailable: {e}"));
        }
        inner.sink.count(Counter::ServeMutate, 1);
        let response =
            apply_session_mutation(&req.session, session, mutation_id, mutation, &*inner.sink);
        obs.recorder.record(
            "mutate",
            Some(mutation_id),
            format!(
                "session '{}': {} Ω={:.3} drift={:.3} evicted={} added={}",
                req.session,
                response.outcome.as_deref().unwrap_or("rejected"),
                response.omega,
                response.drift,
                response.evicted,
                response.added
            ),
        );
        return response;
    }

    if req.query {
        return match sessions.get(&req.session) {
            Some(session) => session_snapshot(&req.session, session, "queried"),
            None => MutateResponse::rejected(&req.session, "unknown session"),
        };
    }

    MutateResponse::rejected(
        &req.session,
        "mutate needs one of: open, mutation + mutation_id, query, close",
    )
}

/// Runs one job start to finish: fence, retry chain, journal, reply.
fn process_job(inner: &Arc<Inner>, job: Job) {
    let obs = &inner.obs;
    let queue_wait_ms = job.enqueued_at.elapsed().as_secs_f64() * 1e3;
    inner.sink.record("serve.queue_wait_ms", queue_wait_ms);
    obs.inflight.fetch_add(1, Ordering::Relaxed);

    let started = Instant::now();
    let mut response = solve_request(inner, &job.request);
    inner.sink.record("serve.solve_ms", started.elapsed().as_secs_f64() * 1e3);

    // Fleet workers stamp their identity on everything they solve, so
    // the journal's completion records and the router's replies both
    // say which shard produced the answer.
    if response.shard.is_none() {
        response.shard = inner.cfg.shard_id.clone();
    }

    // Patch the pre-worker phases into the breakdown the solve filled.
    let timings = response.timings.get_or_insert_with(PhaseTimings::default);
    timings.queue_wait_ms = queue_wait_ms;
    timings.admission_ms = job.admission_ms;

    match &response.status {
        Status::Complete => {
            obs.completed_complete.fetch_add(1, Ordering::Relaxed);
        }
        Status::Truncated { .. } => {
            obs.completed_truncated.fetch_add(1, Ordering::Relaxed);
        }
        // Failed cells tick inside the retry chain, where the reason
        // (panic vs infeasible) is known; nothing to do here.
        _ => {}
    }
    if let Some(executed) = &response.executed {
        let requested = job
            .request
            .algorithm
            .as_deref()
            .and_then(Algorithm::parse)
            .unwrap_or(inner.cfg.default_algorithm);
        if executed != requested.name() {
            obs.count_degraded(executed);
        }
    }
    obs.recorder.record(
        "done",
        Some(&response.id),
        format!("{} omega={:.3} retries={}", response.status.describe(), response.omega, response.retries),
    );

    // A completion that fails to journal still answers the client (the
    // work is done) — but it is counted: after a crash this id would
    // re-solve, so the exactly-once cache now leans on the in-memory
    // map alone.
    if let Err(e) =
        inner.journal_append(&JournalRecord::Completed { response: response.clone() })
    {
        inner.sink.count(Counter::ServeJournalFail, 1);
        obs.failed_journal.fetch_add(1, Ordering::Relaxed);
        obs.recorder
            .record("journal_fail", Some(&response.id), format!("completion append: {e}"));
        eprintln!("usep-serve: journal append failed for '{}': {e}", response.id);
    }
    inner
        .completed
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .entry(response.id.clone())
        .or_insert_with(|| response.clone());
    // Release the slot and leave the inflight gauge *before* the reply
    // goes out: once a client holds its response, a scrape must satisfy
    // accepted == completed + failed + inflight — replying first opened
    // a window where the finished job still looked inflight.
    drop(job.ticket); // release queue slot + ledger bytes
    obs.inflight.fetch_sub(1, Ordering::Relaxed);
    if let Some(reply) = &job.reply {
        let _ = reply.send(response);
    }

    let done = inner.completions.fetch_add(1, Ordering::SeqCst) + 1;
    if inner.cfg.max_requests.is_some_and(|max| done >= max) {
        inner.initiate_shutdown();
    }
}

fn describe_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The solve itself: budget capping, the fence, and the serve-level
/// walk down the degradation chain with backoff between tiers.
fn solve_request(inner: &Inner, request: &SolveRequest) -> SolveResponse {
    let cfg = &inner.cfg;
    let seq = inner.solves_started.fetch_add(1, Ordering::SeqCst) + 1;
    let limits = SolveLimits {
        default_algorithm: cfg.default_algorithm,
        max_timeout_ms: cfg.max_timeout_ms,
        max_mem_budget_bytes: cfg.max_mem_budget_bytes,
        retry: cfg.retry,
        chaos_trip: cfg.chaos_trip,
        chaos_panic_now: cfg.chaos_panic_every.is_some_and(|n| n > 0 && seq.is_multiple_of(n)),
        chaos_delay_ms: cfg.chaos_delay_ms,
    };
    solve_with_retry_observed(request, &limits, &*inner.sink, Some(&inner.obs))
}

/// Server-side limits and fault-injection switches for one solve,
/// decoupled from the socket/journal machinery so the retry chain can
/// be driven in-process (differential tests, determinism audits).
#[derive(Clone, Debug)]
pub struct SolveLimits {
    /// Algorithm for requests that name none.
    pub default_algorithm: Algorithm,
    /// Hard cap on the request's wall-clock budget (and the budget for
    /// requests that ask for none).
    pub max_timeout_ms: u64,
    /// Cap on the request's memory ceiling; `None` leaves requests
    /// without one uncapped.
    pub max_mem_budget_bytes: Option<usize>,
    /// Backoff between degradation-chain retries.
    pub retry: RetryPolicy,
    /// Fault injection: arm the guard with a chaos trip (memory-ceiling
    /// reason) at this checkpoint count.
    pub chaos_trip: Option<u64>,
    /// Fault injection: panic inside the fence on this solve. The
    /// server derives this from its solve sequence number and
    /// `chaos_panic_every`.
    pub chaos_panic_now: bool,
    /// Fault injection: sleep this long inside each tier's solve.
    pub chaos_delay_ms: u64,
}

impl Default for SolveLimits {
    fn default() -> SolveLimits {
        let cfg = ServeConfig::default();
        SolveLimits {
            default_algorithm: cfg.default_algorithm,
            max_timeout_ms: cfg.max_timeout_ms,
            max_mem_budget_bytes: cfg.max_mem_budget_bytes,
            retry: cfg.retry,
            chaos_trip: None,
            chaos_panic_now: false,
            chaos_delay_ms: 0,
        }
    }
}

/// Runs one request through the full serve retry/degradation chain —
/// budget capping, the unwind fence, the infeasible-planning
/// quarantine, best-by-Ω tier selection, and jittered backoff between
/// tiers — without a server, socket, or journal.
///
/// This is exactly the path a live server executes per job; the server
/// calls it through `solve_request`. Exposed so the `usep-oracle`
/// differential engine and the cross-thread determinism tests can audit
/// the serve path in-process.
pub fn solve_with_retry(
    request: &SolveRequest,
    limits: &SolveLimits,
    probe: &dyn Probe,
) -> SolveResponse {
    solve_with_retry_observed(request, limits, probe, None)
}

/// [`solve_with_retry`] with the serve observability plane attached:
/// failure cells tick, tier transitions land in the flight recorder,
/// and every span the solvers open under this call is stamped with the
/// request id and the retry attempt via a [`RequestProbe`].
pub fn solve_with_retry_observed(
    request: &SolveRequest,
    limits: &SolveLimits,
    probe: &dyn Probe,
    obs: Option<&ServeMetrics>,
) -> SolveResponse {
    let algorithm = request
        .algorithm
        .as_deref()
        .and_then(Algorithm::parse)
        .unwrap_or(limits.default_algorithm);
    let chain = GuardedSolver::degradation_chain(algorithm);

    let total = Duration::from_millis(request.timeout_ms.unwrap_or(limits.max_timeout_ms))
        .min(Duration::from_millis(limits.max_timeout_ms));
    let ceiling = {
        let requested = request.mem_budget_mb.map(|mb| (mb as usize).saturating_mul(1 << 20));
        match (requested, limits.max_mem_budget_bytes) {
            (Some(r), Some(cap)) => Some(r.min(cap)),
            (Some(r), None) => Some(r),
            (None, cap) => cap,
        }
    };
    let seed = seed_from_id(&request.id);
    let start = Instant::now();
    let ctx = {
        let mut c = RequestCtx::new(&request.id);
        c.deadline = Some(start + total);
        c
    };

    let mut retries: u64 = 0;
    let mut solve_ms = 0.0;
    let mut backoff_ms = 0.0;
    // best constraint-valid planning across tiers, by Ω
    let mut best: Option<(Planning, Algorithm, f64)> = None;
    let mut last_reason = TruncationReason::Deadline;

    for (k, &tier) in chain.iter().enumerate() {
        let is_last = k + 1 == chain.len();
        let Some(remaining) = SolveBudget::unlimited()
            .with_deadline(total)
            .with_remaining_deadline(start.elapsed())
        else {
            last_reason = TruncationReason::Deadline;
            break;
        };
        let mut budget = remaining;
        if let Some(bytes) = ceiling {
            budget = budget.with_memory_ceiling(bytes);
        }
        if let Some(at) = limits.chaos_trip {
            budget = budget.with_chaos_trip(at, TruncationReason::MemoryCeiling);
        }
        let guard = Guard::new(&budget);

        if limits.chaos_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(limits.chaos_delay_ms));
        }

        // The fence: a panic anywhere in the solver stack (including
        // usep-par workers, which forward their payload here) becomes
        // a typed response instead of a dead server. Every span the
        // tier opens carries the request id and this attempt number.
        let scoped = RequestProbe::new(probe, ctx.with_attempt(k as u32));
        let tier_started = Instant::now();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            if limits.chaos_panic_now {
                panic!("chaos: injected panic");
            }
            solve_guarded(tier, &request.instance, &guard, &scoped)
        }));
        solve_ms += tier_started.elapsed().as_secs_f64() * 1e3;

        let solved = match attempt {
            Ok(s) => s,
            Err(payload) => {
                probe.count(Counter::ServePanic, 1);
                let panic_msg = describe_panic(payload);
                if let Some(obs) = obs {
                    obs.failed_panic.fetch_add(1, Ordering::Relaxed);
                    obs.recorder.record(
                        "panic",
                        Some(&request.id),
                        format!("tier {} {}: {panic_msg}", k, tier.name()),
                    );
                    // the black box survives into the logs at the
                    // moment of the crash, not just at shutdown
                    eprintln!(
                        "usep-serve: contained panic in '{}': {}",
                        request.id,
                        obs.recorder.dump_json()
                    );
                }
                return SolveResponse {
                    retries,
                    timings: Some(PhaseTimings { solve_ms, backoff_ms, ..PhaseTimings::default() }),
                    ..SolveResponse::bare(
                        request.id.clone(),
                        Status::Failed { panic: panic_msg },
                    )
                };
            }
        };

        // A solver that returns an infeasible planning is a bug, not a
        // client error; quarantine it like a panic.
        if let Err(e) = solved.planning.validate(&request.instance) {
            probe.count(Counter::ServePanic, 1);
            if let Some(obs) = obs {
                obs.failed_infeasible.fetch_add(1, Ordering::Relaxed);
                obs.recorder.record(
                    "infeasible",
                    Some(&request.id),
                    format!("tier {} {}: {e}", k, tier.name()),
                );
            }
            return SolveResponse {
                retries,
                timings: Some(PhaseTimings { solve_ms, backoff_ms, ..PhaseTimings::default() }),
                ..SolveResponse::bare(
                    request.id.clone(),
                    Status::Failed { panic: format!("solver produced infeasible planning: {e}") },
                )
            };
        }

        let omega = solved.planning.omega(&request.instance);
        if best.as_ref().is_none_or(|&(_, _, b)| omega > b) {
            best = Some((solved.planning, tier, omega));
        }

        match solved.outcome {
            SolveOutcome::Complete => {
                let (planning, executed, omega) = best.expect("just inserted");
                return SolveResponse {
                    id: request.id.clone(),
                    status: Status::Complete,
                    omega,
                    assignments: planning.num_assignments() as u64,
                    executed: Some(executed.name().to_string()),
                    retries,
                    planning: Some(planning),
                    timings: Some(PhaseTimings { solve_ms, backoff_ms, ..PhaseTimings::default() }),
                    shard: None,
                };
            }
            SolveOutcome::Truncated { reason: TruncationReason::MemoryCeiling } if !is_last => {
                // one tier down, after a jittered, deadline-bounded wait
                retries += 1;
                probe.count(Counter::ServeRetry, 1);
                last_reason = TruncationReason::MemoryCeiling;
                let delay = limits.retry.delay(retries as u32, seed);
                let left = total.saturating_sub(start.elapsed());
                if let Some(obs) = obs {
                    obs.recorder.record(
                        "retry",
                        Some(&request.id),
                        format!(
                            "memory_ceiling at {}; backoff {:?} then tier {}",
                            tier.name(),
                            delay.min(left),
                            chain[k + 1].name()
                        ),
                    );
                }
                let slept = Instant::now();
                std::thread::sleep(delay.min(left));
                backoff_ms += slept.elapsed().as_secs_f64() * 1e3;
            }
            SolveOutcome::Truncated { reason } => {
                if let Some(obs) = obs {
                    obs.recorder.record(
                        "guard_trip",
                        Some(&request.id),
                        format!("{} at tier {} {}", reason.name(), k, tier.name()),
                    );
                }
                last_reason = reason;
                break;
            }
        }
    }

    let (planning, executed, omega) = match best {
        Some(b) => b,
        None => (Planning::empty(&request.instance), *chain.last().expect("non-empty"), 0.0),
    };
    SolveResponse {
        id: request.id.clone(),
        status: Status::Truncated { reason: last_reason.name().to_string() },
        omega,
        assignments: planning.num_assignments() as u64,
        executed: Some(executed.name().to_string()),
        retries,
        planning: Some(planning),
        timings: Some(PhaseTimings { solve_ms, backoff_ms, ..PhaseTimings::default() }),
        shard: None,
    }
}
