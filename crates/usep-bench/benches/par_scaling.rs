//! Scaling of the `usep-par` fork-join sections with thread count.
//!
//! Times the three parallel solver hot paths — RatioGreedy (seed +
//! incident refresh), the capacity-relaxed bound's per-user DPs, and a
//! local-search polish — at 1, 2 and 4 threads on one instance. The
//! plannings are bit-identical at every count (see
//! `tests/par_determinism.rs`), so any time difference is pure
//! scheduling.
//!
//! Besides the usual criterion output, the run exports a machine-
//! readable summary (median ns per section per thread count, plus the
//! 4-thread speedup) to `BENCH_par.json` at the workspace root — path
//! overridable via the `BENCH_PAR_JSON` environment variable — so CI
//! can track the
//! parallel-speedup trajectory across commits. On a single-core runner
//! the speedups sit near (or below) 1×; the export happens regardless.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};
use usep_algos::{bounds, local_search, solve, Algorithm};
use usep_bench::BENCH_USERS;
use usep_core::Instance;
use usep_gen::{generate, SyntheticConfig};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_instance() -> Instance {
    let cfg = SyntheticConfig::default().with_events(50).with_users(BENCH_USERS);
    generate(&cfg, 2015)
}

/// A timed parallel section: a name and a closure returning a value to
/// keep the optimizer honest.
type Section<'a> = (&'static str, Box<dyn Fn() -> f64 + 'a>);

/// The three parallel sections, as named closures over one instance.
fn sections(inst: &Instance) -> Vec<Section<'_>> {
    let base = solve(Algorithm::DeGreedy, inst);
    let ratio = move || solve(Algorithm::RatioGreedy, inst).omega(inst);
    let bound = move || bounds::capacity_relaxed_bound(inst);
    let polish = move || {
        let mut p = base.clone();
        local_search::improve(inst, &mut p, 3) as f64
    };
    vec![
        ("ratio_greedy", Box::new(ratio)),
        ("capacity_relaxed_bound", Box::new(bound)),
        ("local_search", Box::new(polish)),
    ]
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_scaling");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    let inst = bench_instance();
    for (name, run) in sections(&inst) {
        for threads in THREAD_COUNTS {
            usep_par::set_threads(threads);
            g.bench_with_input(BenchmarkId::new(name, threads), &(), |b, ()| {
                b.iter(|| black_box(run()))
            });
        }
        usep_par::set_threads(0);
    }
    g.finish();
}

/// Medians from a small fixed-shape sample, independent of criterion's
/// calibration, feeding the JSON export.
fn median_ns(run: &dyn Fn() -> f64, samples: usize) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(run());
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn export_summary() {
    let inst = bench_instance();
    let mut entries = Vec::new();
    for (name, run) in sections(&inst) {
        let mut medians = Vec::new();
        for threads in THREAD_COUNTS {
            usep_par::set_threads(threads);
            black_box(run()); // warm-up
            medians.push((threads, median_ns(run.as_ref(), 7)));
        }
        usep_par::set_threads(0);
        let t1 = medians[0].1.max(1) as f64;
        let t4 = medians[medians.len() - 1].1.max(1) as f64;
        let per_thread: Vec<String> = medians
            .iter()
            .map(|(t, ns)| format!("{{\"threads\":{t},\"median_ns\":{ns}}}"))
            .collect();
        entries.push(format!(
            "{{\"section\":\"{name}\",\"runs\":[{}],\"speedup_4t\":{:.3}}}",
            per_thread.join(","),
            t1 / t4
        ));
    }
    let json = format!(
        "{{\"bench\":\"par_scaling\",\"events\":{},\"users\":{},\"hardware_threads\":{},\"sections\":[{}]}}\n",
        inst.num_events(),
        inst.num_users(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        entries.join(",")
    );
    // `BENCH_PAR_JSON` overrides; the default resolves to the workspace
    // root (cargo runs benches from the package dir, which previously
    // stranded the export in crates/usep-bench/)
    let path = std::env::var("BENCH_PAR_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| usep_bench::workspace_root_path("BENCH_par.json"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench);

fn main() {
    // mirror the harness's test-mode gate: `cargo test` builds and runs
    // harness=false bench binaries without `--bench`
    if !std::env::args().skip(1).any(|a| a == "--bench") {
        return;
    }
    benches();
    export_summary();
}
