//! Figure 3, column 1: running time as the budget factor `f_b` varies
//! over the paper's axis {0.5, 1, 2, 5, 10}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usep_bench::{paper_algorithms, solve_omega, BENCH_USERS};
use usep_gen::{generate, SyntheticConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_vary_fb");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    for &fb in &[0.5f64, 1.0, 2.0, 5.0, 10.0] {
        let cfg = SyntheticConfig::default().with_users(BENCH_USERS).with_budget_factor(fb);
        let inst = generate(&cfg, 2015);
        for algo in paper_algorithms() {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{fb}")),
                &inst,
                |b, inst| b.iter(|| black_box(solve_omega(algo, inst))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
