//! Figure 2, column 1: running time of all six algorithms as `|V|`
//! varies over the paper's axis {20, 50, 100, 200, 500} (users scaled
//! down; utility/memory counterparts are produced by
//! `usep-experiments --figure 2 --panel v`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usep_bench::{paper_algorithms, solve_omega};
use usep_gen::{generate, SyntheticConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_vary_v");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    for &nv in &[20usize, 50, 100, 200, 500] {
        let cfg = SyntheticConfig::default().with_events(nv).with_users(100);
        let inst = generate(&cfg, 2015);
        for algo in paper_algorithms() {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), nv),
                &inst,
                |b, inst| b.iter(|| black_box(solve_omega(algo, inst))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
