//! Core hot-path microbenchmarks: the object path vs the frozen SoA
//! view (`Instance::freeze`).
//!
//! Times the three inner-loop primitives every solver leans on, each
//! through both `CoreView` implementations on the same instance:
//!
//! * **feasibility_check** — `insertion_point` against populated
//!   schedules: interval scans (object) vs conflict-bitmask word
//!   probes (flat);
//! * **inc_cost** — Eq. (3) insertion deltas: Manhattan-plus-fee
//!   composition on the fly (object) vs precomputed contiguous cost
//!   rows (flat);
//! * **mu_row_sweep** — the Lemma-1-prefiltered candidate sweep over
//!   `μ`-rows, the per-user setup loop of DeDP/DeDPO/DeGreedy.
//!
//! Both views are exercised through the same generic functions, so the
//! comparison measures the data layout, not differing code. Besides the
//! usual criterion output, the run exports a machine-readable summary
//! (median ns per section per view, plus the flat-over-object speedup)
//! to `BENCH_core.json` at the workspace root — path overridable via
//! the `BENCH_CORE_JSON` environment variable — so CI can track the
//! hot-path trajectory across commits.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};
use usep_bench::BENCH_USERS;
use usep_core::{CoreView, EventId, Instance, Schedule, UserId};
use usep_gen::{generate, SyntheticConfig};

fn bench_instance() -> Instance {
    let cfg = SyntheticConfig::default()
        .with_events(50)
        .with_users(BENCH_USERS)
        .with_conflict_ratio(0.5);
    generate(&cfg, 2015)
}

/// One greedily-filled feasible schedule per user — the realistic
/// mid-solve occupancy the feasibility and inc-cost probes run against.
fn filled_schedules(inst: &Instance) -> Vec<Vec<EventId>> {
    (0..inst.num_users() as u32)
        .map(|u| {
            let mut s = Schedule::new();
            for v in inst.event_ids() {
                let _ = s.try_insert(inst, UserId(u), v);
            }
            s.events().to_vec()
        })
        .collect()
}

/// Time-feasibility probe of every event against every user's
/// schedule; interval scans on the object path, word-AND bit probes on
/// the flat one.
fn feasibility<V: CoreView>(view: &V, schedules: &[Vec<EventId>]) -> u64 {
    let nv = view.num_events() as u32;
    let mut feasible = 0u64;
    for events in schedules {
        for v in 0..nv {
            if view.insertion_point(events, EventId(v)).is_some() {
                feasible += 1;
            }
        }
    }
    feasible
}

/// Eq. (3) insertion deltas for every (user, event) pair against the
/// user's schedule.
fn inc_cost<V: CoreView>(view: &V, schedules: &[Vec<EventId>]) -> u64 {
    let nv = view.num_events() as u32;
    let mut acc = 0u64;
    for (u, events) in schedules.iter().enumerate() {
        let u = UserId(u as u32);
        for v in 0..nv {
            if let Some(c) = view.inc_cost(events, u, EventId(v)).finite_value() {
                acc = acc.wrapping_add(u64::from(c));
            }
        }
    }
    acc
}

/// The per-user candidate sweep (positive utility + Lemma-1 budget
/// prefilter) that opens every decomposed solver's user loop.
fn mu_row_sweep<V: CoreView>(view: &V) -> f64 {
    let nv = view.num_events();
    let mut total = 0.0;
    for u in 0..view.num_users() as u32 {
        let u = UserId(u);
        let budget = view.budget(u);
        let row = view.mu_row(u);
        for (v, &m) in row.iter().enumerate().take(nv) {
            if m > 0.0 && view.round_trip(u, EventId(v as u32)) <= budget {
                total += f64::from(m);
            }
        }
    }
    total
}

/// The three sections as (name, object-path run, flat-path run)
/// triples over one instance; both closures return the same value —
/// asserted once up front — so the timed loops are interchangeable.
type Section<'a> = (&'static str, Box<dyn Fn() -> f64 + 'a>, Box<dyn Fn() -> f64 + 'a>);

fn sections<'a>(
    inst: &'a Instance,
    flat: &'a usep_core::FlatInstance,
    schedules: &'a [Vec<EventId>],
) -> Vec<Section<'a>> {
    let sections: Vec<Section<'a>> = vec![
        (
            "feasibility_check",
            Box::new(move || feasibility(inst, schedules) as f64),
            Box::new(move || feasibility(flat, schedules) as f64),
        ),
        (
            "inc_cost",
            Box::new(move || inc_cost(inst, schedules) as f64),
            Box::new(move || inc_cost(flat, schedules) as f64),
        ),
        (
            "mu_row_sweep",
            Box::new(move || mu_row_sweep(inst)),
            Box::new(move || mu_row_sweep(flat)),
        ),
    ];
    for (name, object, flat) in &sections {
        assert_eq!(object(), flat(), "{name}: object and flat paths disagree");
    }
    sections
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("core_hot_paths");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    let inst = bench_instance();
    let flat = inst.freeze();
    let schedules = filled_schedules(&inst);
    for (name, object, flat) in sections(&inst, &flat, &schedules) {
        g.bench_with_input(BenchmarkId::new(name, "object"), &(), |b, ()| {
            b.iter(|| black_box(object()))
        });
        g.bench_with_input(BenchmarkId::new(name, "flat"), &(), |b, ()| {
            b.iter(|| black_box(flat()))
        });
    }
    g.finish();
}

/// Medians from a small fixed-shape sample, independent of criterion's
/// calibration, feeding the JSON export.
fn median_ns(run: &dyn Fn() -> f64, samples: usize) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(run());
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn export_summary() {
    let inst = bench_instance();
    let flat = inst.freeze();
    let schedules = filled_schedules(&inst);
    let mut entries = Vec::new();
    for (name, object, flat) in sections(&inst, &flat, &schedules) {
        black_box(object()); // warm-up
        black_box(flat());
        let object_ns = median_ns(object.as_ref(), 7);
        let flat_ns = median_ns(flat.as_ref(), 7);
        entries.push(format!(
            "{{\"section\":\"{name}\",\"object_median_ns\":{object_ns},\
             \"flat_median_ns\":{flat_ns},\"speedup\":{:.3}}}",
            object_ns.max(1) as f64 / flat_ns.max(1) as f64
        ));
    }
    let json = format!(
        "{{\"bench\":\"core_hot_paths\",\"events\":{},\"users\":{},\"sections\":[{}]}}\n",
        inst.num_events(),
        inst.num_users(),
        entries.join(",")
    );
    // `BENCH_CORE_JSON` overrides; the default resolves to the
    // workspace root (cargo runs benches from the package dir)
    let path = std::env::var("BENCH_CORE_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| usep_bench::workspace_root_path("BENCH_core.json"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench);

fn main() {
    // mirror the harness's test-mode gate: `cargo test` builds and runs
    // harness=false bench binaries without `--bench`
    if !std::env::args().skip(1).any(|a| a == "--bench") {
        return;
    }
    benches();
    export_summary();
}
