//! Figure 3, columns 2–4: running time under the alternative
//! distributions — μ ~ Power(0.5) (col 2), c_v ~ Normal (col 3) and
//! b_u ~ Normal (col 4) — each at the paper's default setting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usep_bench::{paper_algorithms, solve_omega, BENCH_USERS};
use usep_gen::{generate, Spread, SyntheticConfig, UtilityDistribution};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_distributions");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    let base = SyntheticConfig::default().with_users(BENCH_USERS);
    let variants: Vec<(&str, SyntheticConfig)> = vec![
        ("uniform-default", base.clone()),
        (
            "mu-power-0.5",
            base.clone().with_mu_dist(UtilityDistribution::Power { exponent: 0.5 }),
        ),
        (
            "mu-power-4",
            base.clone().with_mu_dist(UtilityDistribution::Power { exponent: 4.0 }),
        ),
        (
            "mu-normal",
            base.clone().with_mu_dist(UtilityDistribution::Normal { mean: 0.5, std: 0.25 }),
        ),
        ("cap-normal", base.clone().with_capacity_dist(Spread::Normal)),
        ("budget-normal", base.clone().with_budget_dist(Spread::Normal)),
    ];
    for (name, cfg) in variants {
        let inst = generate(&cfg, 2015);
        for algo in paper_algorithms() {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), name),
                &inst,
                |b, inst| b.iter(|| black_box(solve_omega(algo, inst))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
