//! Figure 2, column 2: running time as `|U|` varies (paper axis
//! {100, 200, 500, 1000, 5000}, here capped at 1000 for Criterion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usep_bench::{paper_algorithms, solve_omega};
use usep_gen::{generate, SyntheticConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_vary_u");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    for &nu in &[100usize, 200, 500, 1000] {
        let cfg = SyntheticConfig::default().with_users(nu);
        let inst = generate(&cfg, 2015);
        for algo in paper_algorithms() {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), nu),
                &inst,
                |b, inst| b.iter(|| black_box(solve_omega(algo, inst))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
