//! Ablation: cost of the `+RG` augmentation pass (§4.3.2 / §4.4).
//!
//! The pass re-runs RatioGreedy over residual capacity after the
//! decomposed framework finishes. Benchmarking base vs `+RG` variants
//! across conflict ratios isolates its time overhead; the utility it
//! buys is reported by `usep-experiments` (the paper finds it helps
//! DeGreedy noticeably and DeDPO only marginally).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usep_algos::Algorithm;
use usep_bench::{solve_omega, BENCH_USERS};
use usep_gen::{generate, SyntheticConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_rg_pass");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    for &cr in &[0.0f64, 0.5, 1.0] {
        let cfg = SyntheticConfig::default()
            .with_events(50)
            .with_users(BENCH_USERS)
            .with_conflict_ratio(cr);
        let inst = generate(&cfg, 2015);
        for algo in [
            Algorithm::DeGreedy,
            Algorithm::DeGreedyRG,
            Algorithm::DeDPO,
            Algorithm::DeDPORG,
        ] {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), format!("cr{cr}")),
                &inst,
                |b, inst| b.iter(|| black_box(solve_omega(algo, inst))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
