//! Figure 4, column 4: running time on the simulated Meetup city
//! datasets (Table 6) across the `f_b` axis of the paper's real-data
//! experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usep_bench::{paper_algorithms, solve_omega};
use usep_gen::{generate_city, CityConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_real");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(3));
    // the Singapore sweep the paper plots, plus one point per other city
    for &fb in &[0.5f64, 2.0, 10.0] {
        let cfg = CityConfig::singapore().with_budget_factor(fb);
        let inst = generate_city(&cfg, 2015);
        for algo in paper_algorithms() {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), format!("singapore-fb{fb}")),
                &inst,
                |b, inst| b.iter(|| black_box(solve_omega(algo, inst))),
            );
        }
    }
    for cfg in [CityConfig::vancouver(), CityConfig::auckland()] {
        let name = cfg.name.to_lowercase();
        let inst = generate_city(&cfg, 2015);
        for algo in paper_algorithms() {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), &name),
                &inst,
                |b, inst| b.iter(|| black_box(solve_omega(algo, inst))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
