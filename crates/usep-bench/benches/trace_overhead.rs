//! Overhead of the `usep-trace` instrumentation layer.
//!
//! Every solver hot path now reports to a `Probe`. This bench pins the
//! cost of that indirection at its three operating points:
//!
//! * `solve` — the plain entry point (routes through `NOOP` internally);
//! * `probe_noop` — `solve_with_probe(&NOOP)`, the disabled probe every
//!   uninstrumented caller pays for;
//! * `probe_sink` — `solve_with_probe(&TraceSink)`, full counter and
//!   span recording (no I/O; the JSONL writer is exercised elsewhere).
//!
//! The first two must be indistinguishable; the third bounds the price
//! of turning tracing on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usep_algos::Algorithm;
use usep_bench::BENCH_USERS;
use usep_gen::{generate, SyntheticConfig};
use usep_trace::{TraceSink, NOOP};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    let cfg = SyntheticConfig::default().with_events(50).with_users(BENCH_USERS);
    let inst = generate(&cfg, 2015);
    for algo in [Algorithm::RatioGreedy, Algorithm::DeDPO, Algorithm::DeGreedy] {
        g.bench_with_input(BenchmarkId::new(algo.name(), "solve"), &inst, |b, inst| {
            b.iter(|| black_box(usep_algos::solve(algo, inst).omega(inst)))
        });
        g.bench_with_input(BenchmarkId::new(algo.name(), "probe_noop"), &inst, |b, inst| {
            b.iter(|| black_box(usep_algos::solve_with_probe(algo, inst, &NOOP).omega(inst)))
        });
        g.bench_with_input(BenchmarkId::new(algo.name(), "probe_sink"), &inst, |b, inst| {
            b.iter(|| {
                let sink = TraceSink::new();
                black_box(usep_algos::solve_with_probe(algo, inst, &sink).omega(inst))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
