//! Ablation: pseudo-polynomial budget dependence of the DP.
//!
//! `DPSingle`'s table is `O(|V'_r| · b_u)`, so DeDPO's running time
//! scales with the magnitude of the integer costs — a design property
//! the paper inherits from Eq. (4). We vary the coordinate grid (which
//! scales distances, and through the §5.1 formula also budgets) while
//! holding everything else fixed; DeGreedy, which is budget-magnitude
//! oblivious, is the control.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usep_algos::Algorithm;
use usep_bench::solve_omega;
use usep_gen::{generate, SyntheticConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_budget_scale");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    for &grid in &[25i32, 50, 100, 200, 400] {
        let mut cfg = SyntheticConfig::default().with_events(50).with_users(100);
        cfg.grid = grid;
        let inst = generate(&cfg, 2015);
        for algo in [Algorithm::DeDPO, Algorithm::DeGreedy] {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), grid),
                &inst,
                |b, inst| b.iter(|| black_box(solve_omega(algo, inst))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
