//! Figure 2, column 3: running time as the mean event capacity varies
//! over the paper's axis {10, 20, 50, 100, 200}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usep_bench::{paper_algorithms, solve_omega, BENCH_USERS};
use usep_gen::{generate, SyntheticConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_vary_cap");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    for &cap in &[10u32, 20, 50, 100, 200] {
        let cfg = SyntheticConfig::default().with_users(BENCH_USERS).with_capacity_mean(cap);
        let inst = generate(&cfg, 2015);
        for algo in paper_algorithms() {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), cap),
                &inst,
                |b, inst| b.iter(|| black_box(solve_omega(algo, inst))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
