//! Throughput of the `usep-serve` service end to end: real sockets,
//! admission, journal-free solve path, typed responses.
//!
//! The criterion group times one request/response roundtrip against a
//! live in-process server. The export pass then drives a burst of
//! requests from several client threads, computes qps and client-side
//! latency quantiles, cross-checks the counts against the server's own
//! `/metrics` exposition, and writes the summary to `BENCH_serve.json`
//! at the workspace root — path overridable via `BENCH_SERVE_JSON` —
//! so CI can track the serving trajectory next to `BENCH_par.json`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};
use usep_core::Instance;
use usep_gen::{generate, SyntheticConfig};
use usep_serve::{send_request, ServeConfig, Server, SolveRequest, Status};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);
const BURST_REQUESTS: usize = 96;
const CLIENT_THREADS: usize = 4;

fn bench_instance(seed: u64) -> Instance {
    generate(&SyntheticConfig::tiny().with_events(8).with_users(40).with_capacity_mean(5), seed)
}

fn request(id: String, seed: u64) -> SolveRequest {
    SolveRequest {
        id,
        instance: std::sync::Arc::new(bench_instance(seed)),
        algorithm: None,
        timeout_ms: None,
        mem_budget_mb: None,
        city: None,
    }
}

fn start_server() -> usep_serve::ServerHandle {
    Server::start(ServeConfig {
        workers: 2,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    })
    .expect("bench server start")
}

fn bench(c: &mut Criterion) {
    let server = start_server();
    let addr = server.addr();
    let mut g = c.benchmark_group("serve_throughput");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    let mut n = 0u64;
    g.bench_with_input(BenchmarkId::new("roundtrip", 1), &(), |b, ()| {
        b.iter(|| {
            n += 1;
            let resp =
                send_request(addr, &request(format!("bench-{n}"), n), CLIENT_TIMEOUT).unwrap();
            assert_eq!(resp.status, Status::Complete);
            black_box(resp.omega)
        })
    });
    g.finish();
    server.shutdown();
    server.wait();
}

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

fn export_summary() {
    let server = start_server();
    let addr = server.addr();
    let maddr = server.metrics_addr().expect("metrics listener").to_string();

    let burst_started = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..BURST_REQUESTS / CLIENT_THREADS {
                        let id = format!("burst-{t}-{i}");
                        let seed = (t * 1000 + i) as u64;
                        let t0 = Instant::now();
                        let resp = send_request(addr, &request(id, seed), CLIENT_TIMEOUT)
                            .expect("bench request");
                        assert_eq!(resp.status, Status::Complete, "{resp:?}");
                        out.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = burst_started.elapsed().as_secs_f64();

    let mut sorted = latencies.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let total = sorted.len();
    let qps = total as f64 / elapsed.max(1e-9);

    // the server's own exposition must agree with the client's count
    let text = usep_obs::http::get(&maddr, "/metrics", Duration::from_secs(10))
        .expect("scrape /metrics");
    let scrape = usep_obs::top::parse_exposition(&text);
    let accepted = scrape.value("usep_serve_accepted_total").unwrap_or(0.0);
    assert!(
        accepted >= total as f64,
        "metrics disagree with the client: accepted={accepted} sent={total}"
    );

    let json = format!(
        concat!(
            "{{\"bench\":\"serve_throughput\",\"requests\":{},\"client_threads\":{},",
            "\"workers\":2,\"elapsed_s\":{:.3},\"qps\":{:.1},",
            "\"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3},",
            "\"metrics_accepted\":{}}}\n"
        ),
        total,
        CLIENT_THREADS,
        elapsed,
        qps,
        quantile(&sorted, 0.50),
        quantile(&sorted, 0.95),
        quantile(&sorted, 0.99),
        accepted as u64,
    );
    server.shutdown();
    server.wait();

    let path = std::env::var("BENCH_SERVE_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| usep_bench::workspace_root_path("BENCH_serve.json"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench);

fn main() {
    // mirror the harness's test-mode gate: `cargo test` builds and runs
    // harness=false bench binaries without `--bench`
    if !std::env::args().skip(1).any(|a| a == "--bench") {
        return;
    }
    benches();
    export_summary();
}
