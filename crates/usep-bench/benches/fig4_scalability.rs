//! Figure 4, columns 1–3: scalability in `|U|` at `|V| ∈ {100, 200}`
//! and mean capacity 200, for the five scalable algorithms (DeDP is
//! excluded, as in the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usep_bench::{scalable_algorithms, solve_omega};
use usep_gen::{generate, SyntheticConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_scalability");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(3));
    for &nv in &[100usize, 200] {
        for &nu in &[500usize, 1000, 2000] {
            let cfg = SyntheticConfig::default()
                .with_events(nv)
                .with_users(nu)
                .with_capacity_mean(200);
            let inst = generate(&cfg, 2015);
            for algo in scalable_algorithms() {
                g.bench_with_input(
                    BenchmarkId::new(algo.name(), format!("V{nv}-U{nu}")),
                    &inst,
                    |b, inst| b.iter(|| black_box(solve_omega(algo, inst))),
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
