//! Figure 2, column 4: running time as the conflict ratio varies over
//! the paper's axis {0, 0.25, 0.5, 0.75, 1} — the paper's headline
//! observation is that every algorithm gets *faster* as `cr` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usep_bench::{paper_algorithms, solve_omega, BENCH_USERS};
use usep_gen::{generate, SyntheticConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_vary_cr");
    g.sample_size(10).warm_up_time(Duration::from_secs(1)).measurement_time(Duration::from_secs(2));
    for &cr in &[0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let cfg = SyntheticConfig::default().with_users(BENCH_USERS).with_conflict_ratio(cr);
        let inst = generate(&cfg, 2015);
        for algo in paper_algorithms() {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{cr}")),
                &inst,
                |b, inst| b.iter(|| black_box(solve_omega(algo, inst))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
