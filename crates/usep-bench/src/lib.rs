//! Shared helpers for the Criterion benchmarks.
//!
//! Each bench target mirrors one column of the paper's Figures 2–4 at a
//! reduced scale (so `cargo bench` completes in minutes): the x-axis
//! values are the paper's, the user count is scaled down, and every
//! benchmark measures a full solver run on a pre-generated instance.

#![warn(missing_docs)]

use usep_algos::Algorithm;
use usep_core::Instance;

/// User count used by the benchmark instances (the paper's default is
/// 5000; benches run at 250 to keep Criterion's sampling tractable).
pub const BENCH_USERS: usize = 250;

/// The algorithm set benchmarked in Figures 2–3 (all six).
pub fn paper_algorithms() -> Vec<Algorithm> {
    Algorithm::PAPER_SET.to_vec()
}

/// The algorithm set benchmarked in Figure 4 (no DeDP).
pub fn scalable_algorithms() -> Vec<Algorithm> {
    Algorithm::SCALABLE_SET.to_vec()
}

/// Runs `algorithm` once and returns Ω — the value benchmarks
/// `black_box` to keep the run alive.
pub fn solve_omega(algorithm: Algorithm, inst: &Instance) -> f64 {
    usep_algos::solve(algorithm, inst).omega(inst)
}

/// Resolves a bench-export filename against the *workspace root*.
///
/// Cargo runs bench binaries with the package directory as the working
/// directory, so a bare relative path would land the export in
/// `crates/usep-bench/` instead of the repo root where CI (and the
/// README) look for it. Anchoring on `CARGO_MANIFEST_DIR` makes the
/// destination independent of the invoker's cwd.
pub fn workspace_root_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2) // crates/usep-bench → crates → workspace root
        .expect("usep-bench sits two levels below the workspace root")
        .join(file)
}
