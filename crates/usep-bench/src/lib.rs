//! Shared helpers for the Criterion benchmarks.
//!
//! Each bench target mirrors one column of the paper's Figures 2–4 at a
//! reduced scale (so `cargo bench` completes in minutes): the x-axis
//! values are the paper's, the user count is scaled down, and every
//! benchmark measures a full solver run on a pre-generated instance.

#![warn(missing_docs)]

use usep_algos::Algorithm;
use usep_core::Instance;

/// User count used by the benchmark instances (the paper's default is
/// 5000; benches run at 250 to keep Criterion's sampling tractable).
pub const BENCH_USERS: usize = 250;

/// The algorithm set benchmarked in Figures 2–3 (all six).
pub fn paper_algorithms() -> Vec<Algorithm> {
    Algorithm::PAPER_SET.to_vec()
}

/// The algorithm set benchmarked in Figure 4 (no DeDP).
pub fn scalable_algorithms() -> Vec<Algorithm> {
    Algorithm::SCALABLE_SET.to_vec()
}

/// Runs `algorithm` once and returns Ω — the value benchmarks
/// `black_box` to keep the run alive.
pub fn solve_omega(algorithm: Algorithm, inst: &Instance) -> f64 {
    usep_algos::solve(algorithm, inst).omega(inst)
}
