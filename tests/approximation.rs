//! Theorem 3 in practice: DeDP/DeDPO (and their +RG variants) achieve at
//! least half the optimal total utility. Verified exhaustively against
//! the brute-force solver on a large family of tiny random instances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usep::algos::exact::optimal_planning;
use usep::algos::{solve, Algorithm};
use usep::core::{Cost, Instance, InstanceBuilder, Point, TimeInterval};

/// A random tiny instance: up to 5 events, up to 4 users, small grid,
/// arbitrary overlaps, tight-ish budgets — adversarial for schedulers.
fn random_tiny(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let nv = rng.gen_range(1..=5);
    let nu = rng.gen_range(1..=4);
    let mut b = InstanceBuilder::new();
    for _ in 0..nv {
        let start = rng.gen_range(0..30i64);
        let dur = rng.gen_range(1..=10i64);
        b.event(
            rng.gen_range(1..=2),
            Point::new(rng.gen_range(0..12), rng.gen_range(0..12)),
            TimeInterval::new(start, start + dur).unwrap(),
        );
    }
    for _ in 0..nu {
        b.user(
            Point::new(rng.gen_range(0..12), rng.gen_range(0..12)),
            Cost::new(rng.gen_range(0..60)),
        );
    }
    for v in 0..nv {
        for u in 0..nu {
            // ~25% zero utilities to exercise the utility constraint
            let mu = if rng.gen_bool(0.25) {
                0.0
            } else {
                f64::from(rng.gen_range(1..=10u32)) / 10.0
            };
            b.utility(usep::core::EventId(v), usep::core::UserId(u), mu);
        }
    }
    b.build().unwrap()
}

#[test]
fn dedp_family_is_half_approximate_on_200_random_tiny_instances() {
    for seed in 0..200u64 {
        let inst = random_tiny(seed);
        let (_, opt) = optimal_planning(&inst);
        for a in [Algorithm::DeDP, Algorithm::DeDPO, Algorithm::DeDPORG] {
            let got = solve(a, &inst).omega(&inst);
            assert!(
                2.0 * got >= opt - 1e-6,
                "seed {seed}: {a} scored {got} < ½ · OPT = {}",
                opt / 2.0
            );
            assert!(got <= opt + 1e-6, "seed {seed}: {a} beat the optimum?!");
        }
    }
}

#[test]
fn heuristics_never_exceed_the_optimum() {
    for seed in 200..300u64 {
        let inst = random_tiny(seed);
        let (_, opt) = optimal_planning(&inst);
        for a in Algorithm::PAPER_SET {
            let got = solve(a, &inst).omega(&inst);
            assert!(got <= opt + 1e-6, "seed {seed}: {a} = {got} > OPT = {opt}");
        }
    }
}

#[test]
fn dedpo_often_finds_the_exact_optimum_on_single_user_instances() {
    // with |U| = 1 the decomposed DP *is* exact
    let mut exact_hits = 0;
    let mut total = 0;
    for seed in 300..400u64 {
        let inst = random_tiny(seed);
        if inst.num_users() != 1 {
            continue;
        }
        total += 1;
        let (_, opt) = optimal_planning(&inst);
        let got = solve(Algorithm::DeDPO, &inst).omega(&inst);
        assert!(
            (got - opt).abs() < 1e-9,
            "seed {seed}: single-user DeDPO must be optimal ({got} vs {opt})"
        );
        exact_hits += 1;
    }
    assert!(total > 0, "sample contained no single-user instances");
    assert_eq!(exact_hits, total);
}

#[test]
fn average_approximation_quality_is_much_better_than_half() {
    // the ½ bound is worst-case; on random instances DeDPO is near-optimal
    let mut ratio_sum = 0.0;
    let mut n = 0;
    for seed in 400..500u64 {
        let inst = random_tiny(seed);
        let (_, opt) = optimal_planning(&inst);
        if opt <= 0.0 {
            continue;
        }
        ratio_sum += solve(Algorithm::DeDPORG, &inst).omega(&inst) / opt;
        n += 1;
    }
    let mean = ratio_sum / f64::from(n);
    assert!(mean > 0.85, "mean DeDPO+RG/OPT ratio {mean} suspiciously low");
}
