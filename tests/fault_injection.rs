//! Fault injection: adversarially malformed instance JSON.
//!
//! The serde path (`from = "InstanceData"`) trusts its input by design —
//! it is the job of [`Instance::validate`] to catch corrupted or
//! hand-forged files before any solver sees them (the CLI calls it on
//! every JSON load). Each test here mutates one field of a known-good
//! serialized instance into something adversarial and asserts that
//! `validate` rejects it with the *right* error, not a panic.

use usep::core::{Instance, ValidateError};

/// A hand-written valid instance: two compatible events, two users,
/// grid travel. `validate` accepts it, and every mutation below is one
//  textual edit away from it.
fn base_json() -> String {
    r#"{
        "events": [
            {"capacity": 2, "location": {"x": 0, "y": 0}, "time": {"start": 0, "end": 10}},
            {"capacity": 2, "location": {"x": 3, "y": 0}, "time": {"start": 20, "end": 30}}
        ],
        "users": [
            {"location": {"x": 1, "y": 1}, "budget": 100},
            {"location": {"x": 2, "y": 2}, "budget": 100}
        ],
        "mu": [0.5, 0.25, 0.75, 1.0],
        "travel": {"Grid": {"time_per_unit": 0}}
    }"#
    .to_string()
}

/// Same shape but with explicit cost matrices (event 0 precedes event
/// 1, so only `ee[0][1]` may be finite).
fn explicit_json(user_event: &str, event_event: &str) -> String {
    let inf = u32::MAX;
    format!(
        r#"{{
        "events": [
            {{"capacity": 2, "location": {{"x": 0, "y": 0}}, "time": {{"start": 0, "end": 10}}}},
            {{"capacity": 2, "location": {{"x": 3, "y": 0}}, "time": {{"start": 20, "end": 30}}}}
        ],
        "users": [
            {{"location": {{"x": 1, "y": 1}}, "budget": 100}},
            {{"location": {{"x": 2, "y": 2}}, "budget": 100}}
        ],
        "mu": [0.5, 0.25, 0.75, 1.0],
        "travel": {{"Explicit": {{"user_event": {user_event}, "event_event": {event_event}}}}}
    }}"#
    )
    .replace("INF", &inf.to_string())
}

fn load(json: &str) -> Result<(), ValidateError> {
    let inst: Instance = serde_json::from_str(json).expect("structurally valid JSON");
    inst.validate()
}

fn mutate(from: &str, to: &str) -> Result<(), ValidateError> {
    let base = base_json();
    let mutated = base.replacen(from, to, 1);
    assert_ne!(base, mutated, "mutation '{from}' did not apply");
    load(&mutated)
}

#[test]
fn pristine_instances_pass() {
    assert!(load(&base_json()).is_ok());
    let ok = explicit_json("[2, 4, 3, 2]", "[INF, 3, INF, INF]");
    assert!(load(&ok).is_ok(), "{:?}", load(&ok));
}

#[test]
fn nan_utility_rejected() {
    // the vendored serde maps JSON null to NaN for floats — the classic
    // smuggling channel for "not a number" into a trusting loader
    let got = mutate("0.25", "null");
    assert!(
        matches!(got, Err(ValidateError::Utility { value, .. }) if value.is_nan()),
        "{got:?}"
    );
}

#[test]
fn out_of_range_utilities_rejected() {
    for bad in ["1.5", "-0.25", "1e300"] {
        let got = mutate("0.75", bad);
        assert!(matches!(got, Err(ValidateError::Utility { .. })), "μ={bad}: {got:?}");
    }
}

#[test]
fn utility_shape_mismatch_rejected() {
    let got = mutate("\"mu\": [0.5,", "\"mu\": [0.5, 0.5,");
    assert!(matches!(got, Err(ValidateError::UtilityShape { .. })), "{got:?}");
}

#[test]
fn zero_capacity_rejected() {
    let got = mutate("\"capacity\": 2, \"location\": {\"x\": 3", "\"capacity\": 0, \"location\": {\"x\": 3");
    assert!(matches!(got, Err(ValidateError::ZeroCapacity(_))), "{got:?}");
}

#[test]
fn empty_and_inverted_intervals_rejected() {
    for bad in ["{\"start\": 20, \"end\": 20}", "{\"start\": 30, \"end\": 20}"] {
        let got = mutate("{\"start\": 20, \"end\": 30}", bad);
        assert!(matches!(got, Err(ValidateError::EmptyInterval { .. })), "{bad}: {got:?}");
    }
}

#[test]
fn infinite_budget_rejected() {
    // u32::MAX is the Cost::INFINITE sentinel; a user with an infinite
    // budget would overflow the DP tables keyed by budget value
    let got = mutate("\"budget\": 100}", &format!("\"budget\": {}}}", u32::MAX));
    assert!(matches!(got, Err(ValidateError::InfiniteBudget(_))), "{got:?}");
}

#[test]
fn cost_matrix_shape_mismatch_rejected() {
    let got = load(&explicit_json("[2, 4, 3]", "[INF, 3, INF, INF]"));
    assert!(matches!(got, Err(ValidateError::CostShape { which: "user_event", .. })), "{got:?}");
    let got = load(&explicit_json("[2, 4, 3, 2]", "[INF, 3, INF]"));
    assert!(matches!(got, Err(ValidateError::CostShape { which: "event_event", .. })), "{got:?}");
}

#[test]
fn finite_cost_on_conflicting_leg_rejected() {
    // event 1 does not precede event 0, so ee[1][0] must be infinite;
    // a finite value would let schedulers travel back in time
    let got = load(&explicit_json("[2, 4, 3, 2]", "[INF, 3, 7, INF]"));
    assert!(matches!(got, Err(ValidateError::FiniteCostForConflict(_, _))), "{got:?}");
    // ... and so must the diagonal
    let got = load(&explicit_json("[2, 4, 3, 2]", "[5, 3, INF, INF]"));
    assert!(matches!(got, Err(ValidateError::FiniteCostForConflict(_, _))), "{got:?}");
}

#[test]
fn triangle_violation_rejected() {
    // cost(u0, v1) = 90 > cost(u0, v0) + cost(v0, v1) = 2 + 3: the
    // "detour is cheaper than the direct leg" forgery that would break
    // the incremental-cost reasoning of every scheduler
    let got = load(&explicit_json("[2, 90, 3, 2]", "[INF, 3, INF, INF]"));
    assert!(matches!(got, Err(ValidateError::TriangleViolation { .. })), "{got:?}");
}

#[test]
fn rejected_instances_never_reach_solvers_via_the_cli_loader() {
    // end-to-end: the same corrupt bytes, loaded the way `usep solve`
    // loads them, yield an error — not a solver panic
    let corrupt = base_json().replacen("0.25", "7.5", 1);
    let inst: Instance = serde_json::from_str(&corrupt).unwrap();
    assert!(inst.validate().is_err());
}
