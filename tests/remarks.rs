//! The paper's two problem variants (§2, Remarks 1–2), implemented as
//! reductions to the base USEP problem.

use usep::algos::{solve, Algorithm};
use usep::core::{Cost, EventId, InstanceBuilder, Point, TimeInterval, UserId};
use usep::gen::{generate, SyntheticConfig};

fn iv(a: i64, b: i64) -> TimeInterval {
    TimeInterval::new(a, b).unwrap()
}

// ---- Remark 1: per-user candidate sets V_u ----

#[test]
fn restricted_candidates_are_never_assigned() {
    let inst = generate(&SyntheticConfig::tiny().with_users(20), 21);
    // each user may only attend events with matching parity
    let sets: Vec<Vec<EventId>> = (0..inst.num_users())
        .map(|u| {
            inst.event_ids().filter(|v| (v.index() + u) % 2 == 0).collect()
        })
        .collect();
    let restricted = inst.restrict_candidates(&sets);
    for a in Algorithm::PAPER_SET {
        let p = solve(a, &restricted);
        p.validate(&restricted).unwrap();
        for (u, v) in p.assignments() {
            assert!(
                sets[u.index()].contains(&v),
                "{a} assigned {v} outside the candidate set of {u}"
            );
        }
    }
}

#[test]
fn restriction_never_raises_omega() {
    let inst = generate(&SyntheticConfig::tiny().with_users(25), 22);
    let sets: Vec<Vec<EventId>> = (0..inst.num_users())
        .map(|u| inst.event_ids().filter(|v| (v.index() + u) % 3 != 0).collect())
        .collect();
    let restricted = inst.restrict_candidates(&sets);
    let full = solve(Algorithm::DeDPO, &inst).omega(&inst);
    let cut = solve(Algorithm::DeDPO, &restricted).omega(&restricted);
    assert!(cut <= full + 1e-9, "restricting options raised Ω: {cut} > {full}");
}

#[test]
fn empty_candidate_sets_mean_empty_schedules() {
    let inst = generate(&SyntheticConfig::tiny().with_users(10), 23);
    let sets: Vec<Vec<EventId>> = vec![Vec::new(); inst.num_users()];
    let restricted = inst.restrict_candidates(&sets);
    for a in Algorithm::PAPER_SET {
        assert_eq!(solve(a, &restricted).num_assignments(), 0, "{a}");
    }
}

// ---- Remark 2: participation fees ----

/// Two events in sequence, both 3 away from the user, with fees.
fn feed_instance(fee0: u32, fee1: u32, budget: u32) -> usep::core::Instance {
    let mut b = InstanceBuilder::new();
    let v0 = b.event(1, Point::new(3, 0), iv(0, 10));
    let v1 = b.event(1, Point::new(3, 0), iv(10, 20));
    let u = b.user(Point::ORIGIN, Cost::new(budget));
    b.utility(v0, u, 0.9);
    b.utility(v1, u, 0.8);
    b.fee(v0, fee0);
    b.fee(v1, fee1);
    b.build().unwrap()
}

#[test]
fn fees_are_charged_once_per_attended_event() {
    // without fees: 3 + 0 + 3 = 6 travel for both events
    let inst = feed_instance(5, 7, 100);
    let p = solve(Algorithm::DeDPO, &inst);
    let u = UserId(0);
    assert_eq!(p.schedule(u).len(), 2);
    // 3 (to v0) + 5 (fee v0) + 0 (to v1) + 7 (fee v1) + 3 (home) = 18
    assert_eq!(p.schedule(u).total_cost(&inst, u), Cost::new(18));
}

#[test]
fn unaffordable_fee_excludes_the_event() {
    // budget 10: travel alone costs 6; fee 7 on v1 busts it
    let inst = feed_instance(0, 7, 10);
    let p = solve(Algorithm::DeDPO, &inst);
    let u = UserId(0);
    assert_eq!(p.schedule(u).events(), &[EventId(0)]);
    assert!(p.validate(&inst).is_ok());
}

#[test]
fn fee_changes_round_trip_and_lemma1() {
    let inst = feed_instance(10, 0, 100);
    let u = UserId(0);
    // round trip to v0: 3 + 10 + 3
    assert_eq!(inst.round_trip(u, EventId(0)), Cost::new(16));
    assert_eq!(inst.round_trip(u, EventId(1)), Cost::new(6));
    assert_eq!(inst.fee(EventId(0)), 10);
    assert_eq!(inst.fee(EventId(1)), 0);
}

#[test]
fn fees_flow_through_event_to_event_costs() {
    let inst = feed_instance(0, 4, 100);
    // v0 → v1 at the same venue: travel 0 + fee 4
    assert_eq!(inst.cost_vv(EventId(0), EventId(1)), Cost::new(4));
}

#[test]
fn all_algorithms_feasible_with_random_fees() {
    let base = generate(&SyntheticConfig::tiny().with_users(20), 24);
    // rebuild with fees assigned deterministically
    let mut b = InstanceBuilder::new();
    for e in base.events() {
        b.event(e.capacity, e.location, e.time);
    }
    for u in base.users() {
        b.user(u.location, u.budget);
    }
    for v in base.event_ids() {
        for u in base.user_ids() {
            b.utility(v, u, base.mu(v, u));
        }
        b.fee(v, (v.index() as u32 * 3) % 10);
    }
    let inst = b.build().unwrap();
    for a in Algorithm::PAPER_SET {
        let p = solve(a, &inst);
        p.validate(&inst).unwrap_or_else(|e| panic!("{a} with fees: {e}"));
    }
    // fee'd planning never beats the fee-free one in Ω terms... is not a
    // theorem (Ω ignores cost), but budgets only tightened, so:
    let with_fees = solve(Algorithm::DeDPO, &inst).omega(&inst);
    let without = solve(Algorithm::DeDPO, &base).omega(&base);
    assert!(with_fees <= without + 1e-6, "fees should not increase Ω");
}

#[test]
fn fees_survive_serde() {
    let inst = feed_instance(5, 7, 100);
    let json = serde_json::to_string(&inst).unwrap();
    let back: usep::core::Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(back, inst);
    assert_eq!(back.fee(EventId(0)), 5);
    assert_eq!(back.cost_vv(EventId(0), EventId(1)), Cost::new(7));
}
