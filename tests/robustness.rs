//! Degenerate-instance regression matrix and bounded-solve behavior.
//!
//! Every algorithm (and the guarded orchestrator) must handle instances
//! with no events, no users, or neither — returning an empty but
//! constraint-valid planning rather than panicking — and a bounded
//! solve on such instances must still tag its outcome correctly.

use std::time::Duration;
use usep::algos::{
    local_search, solve, solve_guarded, Algorithm, Guard, GuardedSolver, SolveBudget,
};
use usep::core::{Cost, Instance, InstanceBuilder, Point, TimeInterval};
use usep::trace::NOOP;

const EVERY_ALGORITHM: [Algorithm; 8] = [
    Algorithm::RatioGreedy,
    Algorithm::DeDP,
    Algorithm::DeDPO,
    Algorithm::DeDPORG,
    Algorithm::DeGreedy,
    Algorithm::DeGreedyRG,
    Algorithm::SingleEventGreedy,
    Algorithm::UtilityGreedy,
];

fn no_events_no_users() -> Instance {
    InstanceBuilder::new().build().unwrap()
}

fn events_only() -> Instance {
    let mut b = InstanceBuilder::new();
    for i in 0..3 {
        b.event(2, Point::new(i, 0), TimeInterval::new(0, 5).unwrap());
    }
    b.build().unwrap()
}

fn users_only() -> Instance {
    let mut b = InstanceBuilder::new();
    for j in 0..4 {
        b.user(Point::new(j, 0), Cost::new(50));
    }
    b.build().unwrap()
}

fn degenerate_instances() -> [(&'static str, Instance); 3] {
    [
        ("no events, no users", no_events_no_users()),
        ("events only", events_only()),
        ("users only", users_only()),
    ]
}

#[test]
fn every_algorithm_survives_degenerate_instances() {
    for (label, inst) in degenerate_instances() {
        for a in EVERY_ALGORITHM {
            let p = solve(a, &inst);
            p.validate(&inst)
                .unwrap_or_else(|e| panic!("{a} on '{label}': infeasible: {e}"));
            assert_eq!(p.num_assignments(), 0, "{a} on '{label}'");
            assert_eq!(p.omega(&inst), 0.0, "{a} on '{label}'");
        }
    }
}

#[test]
fn guarded_trait_path_survives_degenerate_instances() {
    for (label, inst) in degenerate_instances() {
        for a in EVERY_ALGORITHM {
            let gs = solve_guarded(a, &inst, Guard::none(), &NOOP);
            assert!(gs.outcome.is_complete(), "{a} on '{label}': {:?}", gs.outcome);
            assert!(gs.planning.validate(&inst).is_ok(), "{a} on '{label}'");
        }
    }
}

#[test]
fn guarded_orchestrator_survives_degenerate_instances() {
    for (label, inst) in degenerate_instances() {
        for a in EVERY_ALGORITHM {
            // unlimited budget: completes, never degrades
            let r = GuardedSolver::new(a, SolveBudget::unlimited()).solve(&inst);
            assert!(r.outcome.is_complete(), "{a} on '{label}'");
            assert!(!r.degraded(), "{a} on '{label}'");
            assert_eq!(r.executed, a, "{a} on '{label}'");

            // an already-expired deadline: truncated, still valid
            let expired = SolveBudget::unlimited().with_deadline(Duration::ZERO);
            let r = GuardedSolver::new(a, expired).solve(&inst);
            assert!(!r.outcome.is_complete(), "{a} on '{label}'");
            assert!(r.planning.validate(&inst).is_ok(), "{a} on '{label}'");
            assert_eq!(r.planning.num_assignments(), 0, "{a} on '{label}'");
        }
    }
}

#[test]
fn post_passes_survive_degenerate_instances() {
    for (_, inst) in degenerate_instances() {
        let mut p = solve(Algorithm::RatioGreedy, &inst);
        assert_eq!(local_search::improve(&inst, &mut p, 3), 0);
        assert!(p.validate(&inst).is_ok());
        let ub = usep::algos::bounds::best_upper_bound(&inst);
        assert!(ub >= 0.0, "bound {ub} negative");
    }
}

#[test]
fn zero_budget_users_are_never_assigned() {
    // users who cannot afford any travel: algorithms must not assign
    // them, not crash on them
    let mut b = InstanceBuilder::new();
    let v = b.event(3, Point::new(5, 5), TimeInterval::new(0, 10).unwrap());
    for j in 0..3 {
        b.user(Point::new(0, j), Cost::new(0));
    }
    for j in 0..3 {
        b.utility(v, usep::core::UserId(j), 0.9);
    }
    let inst = b.build().unwrap();
    for a in EVERY_ALGORITHM {
        let p = solve(a, &inst);
        assert!(p.validate(&inst).is_ok(), "{a}");
        assert_eq!(p.num_assignments(), 0, "{a}: assigned an unaffordable event");
    }
}
