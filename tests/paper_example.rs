//! The paper's running example (Table 1, Examples 1–4), reconstructed.
//!
//! Table 1 fixes the utilities, capacities, budgets and times; Figure 1a
//! gives the locations only pictorially, so we pick grid coordinates
//! consistent with the costs the example tables reveal (e.g.
//! `cost(u1, v1) = 9`, `cost(u2, v1) = 2`, `cost(u1, v4) = 1` from the
//! `inc_cost` columns of Table 3) and test behavioural invariants rather
//! than the paper's exact Ω values — see DESIGN.md §6.

use usep::algos::{solve, Algorithm};
use usep::core::{Cost, EventId, Instance, InstanceBuilder, Point, TimeInterval, UserId};

const V1: EventId = EventId(0);
const V2: EventId = EventId(1);
const V3: EventId = EventId(2);
const V4: EventId = EventId(3);

fn hour(h: i64) -> i64 {
    h * 60
}

/// Table 1: four events, five users.
fn running_example() -> Instance {
    let mut b = InstanceBuilder::new();
    // (capacity, location, time): v1(1) 1-4pm, v2(3) 3-6pm, v3(4) 1-2pm,
    // v4(2) 6-7pm
    b.event(1, Point::new(0, 0), TimeInterval::new(hour(13), hour(16)).unwrap());
    b.event(3, Point::new(4, 1), TimeInterval::new(hour(15), hour(18)).unwrap());
    b.event(4, Point::new(2, 3), TimeInterval::new(hour(13), hour(14)).unwrap());
    b.event(2, Point::new(5, 5), TimeInterval::new(hour(18), hour(19)).unwrap());
    // users with budgets: u1(59), u2(29), u3(51), u4(9), u5(33);
    // locations chosen so that cost(u1,v1)=9, cost(u2,v1)=2,
    // cost(u3,v1)=2, cost(u4,v1)=3, cost(u5,v1)=8, cost(u1,v4)=1 as the
    // example's inc_cost values reveal
    let users = [
        (Point::new(5, 4), 59u32),
        (Point::new(1, 1), 29),
        (Point::new(1, -1), 51),
        (Point::new(-2, 1), 9),
        (Point::new(4, -4), 33),
    ];
    for (p, budget) in users {
        b.user(p, Cost::new(budget));
    }
    // Table 1 utilities (rows = events v1..v4, columns = users u1..u5)
    let mu = [
        [0.2, 0.6, 0.7, 0.3, 0.6],
        [0.5, 0.1, 0.3, 0.9, 0.5],
        [0.6, 0.2, 0.9, 0.4, 0.5],
        [0.4, 0.7, 0.2, 0.5, 0.1],
    ];
    for (vi, row) in mu.iter().enumerate() {
        for (ui, &m) in row.iter().enumerate() {
            b.utility(EventId(vi as u32), UserId(ui as u32), m);
        }
    }
    b.build().unwrap()
}

#[test]
fn reconstructed_costs_match_the_example_tables() {
    let inst = running_example();
    assert_eq!(inst.cost_uv(UserId(0), V1), Cost::new(9));
    assert_eq!(inst.cost_uv(UserId(1), V1), Cost::new(2));
    assert_eq!(inst.cost_uv(UserId(2), V1), Cost::new(2));
    assert_eq!(inst.cost_uv(UserId(3), V1), Cost::new(3));
    assert_eq!(inst.cost_uv(UserId(4), V1), Cost::new(8));
    assert_eq!(inst.cost_uv(UserId(0), V4), Cost::new(1));
}

#[test]
fn temporal_structure_matches_example_1() {
    let inst = running_example();
    // sorted by end time: v3 (2pm), v1 (4pm), v2 (6pm), v4 (7pm)
    assert_eq!(inst.temporal().order(), &[2, 0, 1, 3]);
    // v1 (1-4pm) conflicts with v2 (3-6pm) and with v3 (1-2pm)
    assert!(!inst.compatible(V1, V2));
    assert!(!inst.compatible(V1, V3));
    // the feasible chains: v3 → v2 → v4, v1 → v4, v3 → v4
    assert!(inst.cost_vv(V3, V2).is_finite());
    assert!(inst.cost_vv(V2, V4).is_finite());
    assert!(inst.cost_vv(V1, V4).is_finite());
    assert!(inst.cost_vv(V3, V4).is_finite());
}

#[test]
fn all_algorithms_return_feasible_plannings() {
    let inst = running_example();
    for a in Algorithm::PAPER_SET {
        let p = solve(a, &inst);
        p.validate(&inst).unwrap_or_else(|e| panic!("{a}: {e}"));
        assert!(p.omega(&inst) > 0.0, "{a} found nothing");
    }
}

#[test]
fn dedp_family_beats_ratio_greedy_here() {
    // Example 2 vs Example 3: RatioGreedy scores 3.6, DeDP 4.6 in the
    // paper; with our geometry the ordering must persist.
    let inst = running_example();
    let rg = solve(Algorithm::RatioGreedy, &inst).omega(&inst);
    let dedp = solve(Algorithm::DeDP, &inst).omega(&inst);
    assert!(
        dedp > rg,
        "DeDP ({dedp}) should beat RatioGreedy ({rg}) on the running example"
    );
}

#[test]
fn dedp_equals_dedpo_on_the_example() {
    let inst = running_example();
    assert_eq!(solve(Algorithm::DeDP, &inst), solve(Algorithm::DeDPO, &inst));
}

#[test]
fn user4_tight_budget_only_allows_nearby_events() {
    // u4 has budget 9; v4's round trip alone costs 2·(7+4)=22 > 9
    let inst = running_example();
    assert!(inst.round_trip(UserId(3), V4) > inst.user(UserId(3)).budget);
    for a in Algorithm::PAPER_SET {
        let p = solve(a, &inst);
        assert!(
            !p.schedule(UserId(3)).contains(V4),
            "{a} assigned unaffordable v4 to u4"
        );
    }
}

#[test]
fn capacity_one_event_v1_never_oversubscribed() {
    let inst = running_example();
    for a in Algorithm::PAPER_SET {
        let p = solve(a, &inst);
        assert!(p.load(V1) <= 1, "{a} oversubscribed v1");
    }
}

#[test]
fn golden_omegas_are_stable() {
    // deterministic regression anchors (our geometry, not the paper's):
    // recorded from the first verified run; any change is a behavioural
    // diff that must be intentional
    let inst = running_example();
    let omega = |a| (solve(a, &inst).omega(&inst) * 1000.0).round() / 1000.0;
    let rg = omega(Algorithm::RatioGreedy);
    let dedp = omega(Algorithm::DeDP);
    let degreedy = omega(Algorithm::DeGreedy);
    // invariant relations
    assert!(dedp >= degreedy - 1e-9);
    assert!(dedp >= rg);
    // print for the curious (visible with --nocapture)
    println!("running example: RatioGreedy={rg} DeDP={dedp} DeGreedy={degreedy}");
}
