//! End-to-end serialization: instances and plannings survive JSON round
//! trips with identical solver behaviour, for every generator family.

use usep::algos::{solve, Algorithm};
use usep::core::{Instance, Planning};
use usep::gen::{generate, generate_city, CityConfig, SyntheticConfig};

fn roundtrip_instance(inst: &Instance) -> Instance {
    let json = serde_json::to_string(inst).expect("serialize instance");
    serde_json::from_str(&json).expect("deserialize instance")
}

#[test]
fn synthetic_instance_roundtrip_preserves_solutions() {
    let inst = generate(&SyntheticConfig::tiny().with_users(30), 11);
    let back = roundtrip_instance(&inst);
    assert_eq!(back, inst);
    for a in [Algorithm::DeDPO, Algorithm::RatioGreedy, Algorithm::DeGreedyRG] {
        assert_eq!(solve(a, &inst), solve(a, &back), "{a} differs after round trip");
    }
}

#[test]
fn city_instance_roundtrip() {
    let mut cfg = CityConfig::auckland();
    cfg.num_users = 60; // keep the test quick
    cfg.num_events = 12;
    let inst = generate_city(&cfg, 3);
    let back = roundtrip_instance(&inst);
    assert_eq!(back, inst);
    assert_eq!(back.conflict_ratio(), inst.conflict_ratio());
}

#[test]
fn planning_roundtrip_validates_against_its_instance() {
    let inst = generate(&SyntheticConfig::tiny().with_users(25), 13);
    let p = solve(Algorithm::DeDPORG, &inst);
    let json = serde_json::to_string(&p).expect("serialize planning");
    let back: Planning = serde_json::from_str(&json).expect("deserialize planning");
    assert_eq!(back, p);
    assert!(back.validate(&inst).is_ok());
    assert_eq!(back.omega(&inst), p.omega(&inst));
}

#[test]
fn config_files_roundtrip() {
    let cfg = SyntheticConfig::default().with_conflict_ratio(0.75).with_budget_factor(5.0);
    let json = serde_json::to_string_pretty(&cfg).unwrap();
    let back: SyntheticConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);

    let city = CityConfig::singapore().with_budget_factor(10.0);
    let json = serde_json::to_string(&city).unwrap();
    let back: CityConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, city);
}
