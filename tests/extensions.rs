//! End-to-end coverage of the beyond-the-paper extensions through the
//! facade crate: upper bounds, local search, max-min fairness, the
//! binary codec and the standalone single-user DP.

use usep::algos::{
    bounds, local_search, optimal_user_schedule, solve, Algorithm, MaxMinGreedy, Solver,
};
use usep::core::{codec, FairnessStats, Schedule, UserId};
use usep::gen::{generate, SyntheticConfig};

fn instance() -> usep::core::Instance {
    generate(&SyntheticConfig::tiny().with_users(30).with_capacity_mean(2), 1234)
}

#[test]
fn upper_bound_certifies_solution_quality() {
    let inst = instance();
    let ub = bounds::best_upper_bound(&inst);
    for a in Algorithm::PAPER_SET {
        let omega = solve(a, &inst).omega(&inst);
        assert!(omega <= ub + 1e-9, "{a}: Ω {omega} above the bound {ub}");
    }
    // the bound is not vacuous: DeDPO+RG gets a meaningful fraction
    let best = solve(Algorithm::DeDPORG, &inst).omega(&inst);
    assert!(best / ub > 0.4, "bound looks vacuous: ratio {}", best / ub);
}

#[test]
fn local_search_pipeline_end_to_end() {
    let inst = instance();
    let mut p = solve(Algorithm::DeGreedyRG, &inst);
    let before = p.omega(&inst);
    let moves = local_search::improve(&inst, &mut p, 8);
    p.validate(&inst).unwrap();
    assert!(p.omega(&inst) >= before - 1e-9);
    // after convergence another call is a no-op
    if moves > 0 {
        assert_eq!(local_search::improve(&inst, &mut p, 8), 0);
    }
    // and the result still respects the upper bound
    assert!(p.omega(&inst) <= bounds::best_upper_bound(&inst) + 1e-9);
}

#[test]
fn maxmin_is_feasible_and_measurably_fairer_under_scarcity() {
    let inst = instance();
    let mm = MaxMinGreedy.solve(&inst);
    mm.validate(&inst).unwrap();
    let f_mm = FairnessStats::compute(&inst, &mm);
    let f_dp = FairnessStats::compute(&inst, &solve(Algorithm::DeDPO, &inst));
    assert!(
        f_mm.served_fraction >= f_dp.served_fraction - 0.05,
        "maxmin served {} vs DeDPO {}",
        f_mm.served_fraction,
        f_dp.served_fraction
    );
}

#[test]
fn binary_codec_roundtrips_generated_instances() {
    for seed in [1u64, 2, 3] {
        let inst = generate(&SyntheticConfig::tiny().with_users(20), seed)
            .restrict_candidates(
                &(0..20)
                    .map(|u| {
                        (0..8u32)
                            .filter(|v| (v + u) % 2 == 0)
                            .map(usep::core::EventId)
                            .collect()
                    })
                    .collect::<Vec<_>>(),
            );
        let back = codec::decode(&codec::encode(&inst)).unwrap();
        assert_eq!(back, inst);
        assert_eq!(
            solve(Algorithm::DeDPO, &back),
            solve(Algorithm::DeDPO, &inst),
            "seed {seed}: codec changed solver behaviour"
        );
    }
}

#[test]
fn single_user_dp_is_a_usable_day_planner() {
    let inst = instance();
    let u = UserId(0);
    let cands: Vec<_> = inst
        .event_ids()
        .map(|v| (v, inst.mu(v, u)))
        .filter(|&(_, m)| m > 0.0)
        .collect();
    let (events, score) = optimal_user_schedule(&inst, u, &cands);
    let sched = Schedule::from_time_ordered(&inst, events);
    assert!(sched.check(&inst, u).is_ok());
    assert!((sched.utility(&inst, u) - score).abs() < 1e-9);
    // the itinerary renders without panicking and mentions the user
    let text = sched.describe(&inst, u);
    assert!(text.contains("u0"));
    // it is at least as good as what any full planning gives this user
    for a in Algorithm::PAPER_SET {
        let got = solve(a, &inst).schedule(u).utility(&inst, u);
        assert!(got <= score + 1e-9, "{a} gave u0 more than their optimum?");
    }
}
