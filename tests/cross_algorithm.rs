//! Cross-algorithm invariants over seeded synthetic instance sweeps.

use usep::algos::{augment_with_ratio_greedy, solve, Algorithm};
use usep::gen::{generate, Spread, SyntheticConfig, UtilityDistribution};

fn configs() -> Vec<SyntheticConfig> {
    let small = SyntheticConfig::tiny().with_users(25);
    vec![
        small.clone(),
        small.clone().with_conflict_ratio(0.0),
        small.clone().with_conflict_ratio(0.75),
        small.clone().with_conflict_ratio(1.0),
        small.clone().with_budget_factor(0.5),
        small.clone().with_budget_factor(10.0),
        small.clone().with_capacity_mean(1),
        small.clone().with_mu_dist(UtilityDistribution::Power { exponent: 0.5 }),
        small.clone().with_mu_dist(UtilityDistribution::Normal { mean: 0.5, std: 0.25 }),
        small.clone().with_capacity_dist(Spread::Normal).with_budget_dist(Spread::Normal),
        small.with_events(20).with_users(60),
    ]
}

#[test]
fn every_algorithm_is_feasible_on_every_config_and_seed() {
    for (ci, cfg) in configs().iter().enumerate() {
        for seed in 0..5u64 {
            let inst = generate(cfg, 1000 + seed);
            for a in Algorithm::PAPER_SET {
                let p = solve(a, &inst);
                p.validate(&inst)
                    .unwrap_or_else(|e| panic!("config {ci} seed {seed} {a}: {e}"));
            }
        }
    }
}

#[test]
fn dedp_and_dedpo_always_identical() {
    for (ci, cfg) in configs().iter().enumerate() {
        for seed in 0..5u64 {
            let inst = generate(cfg, 2000 + seed);
            let a = solve(Algorithm::DeDP, &inst);
            let b = solve(Algorithm::DeDPO, &inst);
            assert_eq!(a, b, "config {ci} seed {seed}: DeDP ≠ DeDPO");
        }
    }
}

#[test]
fn augmentation_is_monotone_in_omega() {
    for (ci, cfg) in configs().iter().enumerate() {
        for seed in 0..5u64 {
            let inst = generate(cfg, 3000 + seed);
            for (base, plus) in [
                (Algorithm::DeDPO, Algorithm::DeDPORG),
                (Algorithm::DeGreedy, Algorithm::DeGreedyRG),
            ] {
                let b = solve(base, &inst).omega(&inst);
                let p = solve(plus, &inst).omega(&inst);
                assert!(
                    p >= b - 1e-9,
                    "config {ci} seed {seed}: {plus} ({p}) < {base} ({b})"
                );
            }
        }
    }
}

#[test]
fn augmenting_an_already_augmented_planning_is_a_fixpoint_in_omega() {
    let cfg = SyntheticConfig::tiny().with_users(30);
    for seed in 0..5u64 {
        let inst = generate(&cfg, 4000 + seed);
        let mut p = solve(Algorithm::DeGreedyRG, &inst);
        let before = p.omega(&inst);
        let added = augment_with_ratio_greedy(&inst, &mut p);
        assert_eq!(added, 0, "seed {seed}: +RG left residual work behind");
        assert!((p.omega(&inst) - before).abs() < 1e-9);
    }
}

#[test]
fn deterministic_across_repeated_runs() {
    let cfg = SyntheticConfig::tiny().with_users(40);
    let inst = generate(&cfg, 5);
    for a in Algorithm::PAPER_SET {
        assert_eq!(solve(a, &inst), solve(a, &inst), "{a} is nondeterministic");
    }
}

#[test]
fn multi_event_algorithms_beat_single_event_baseline_on_favourable_instances() {
    // low conflict + generous budgets: multi-event planning must help
    let cfg = SyntheticConfig::tiny()
        .with_users(30)
        .with_conflict_ratio(0.0)
        .with_budget_factor(10.0);
    let mut wins = 0;
    for seed in 0..5u64 {
        let inst = generate(&cfg, 6000 + seed);
        let single = solve(Algorithm::SingleEventGreedy, &inst).omega(&inst);
        let multi = solve(Algorithm::DeDPO, &inst).omega(&inst);
        if multi > single {
            wins += 1;
        }
    }
    assert_eq!(wins, 5, "DeDPO should beat the single-event baseline on all seeds");
}

#[test]
fn omega_never_exceeds_total_utility_mass() {
    for (ci, cfg) in configs().iter().enumerate() {
        let inst = generate(cfg, 7000 + ci as u64);
        let bound = inst.total_utility_mass();
        for a in Algorithm::PAPER_SET {
            let o = solve(a, &inst).omega(&inst);
            assert!(o <= bound + 1e-6, "config {ci} {a}: Ω {o} > mass {bound}");
        }
    }
}

#[test]
fn empty_and_degenerate_instances() {
    // no events
    let inst = generate(&SyntheticConfig::tiny().with_events(0).with_users(5), 1);
    for a in Algorithm::PAPER_SET {
        assert_eq!(solve(a, &inst).num_assignments(), 0);
    }
    // no users
    let inst = generate(&SyntheticConfig::tiny().with_events(5).with_users(0), 1);
    for a in Algorithm::PAPER_SET {
        assert_eq!(solve(a, &inst).num_assignments(), 0);
    }
    // single user, single event
    let inst = generate(&SyntheticConfig::tiny().with_events(1).with_users(1), 1);
    for a in Algorithm::PAPER_SET {
        solve(a, &inst).validate(&inst).unwrap();
    }
}
