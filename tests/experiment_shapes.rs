//! Mini-scale reproductions of the paper's §5.2 qualitative findings
//! ("shapes"), as assertions. Each test mirrors one claim from the
//! experimental study at reduced size — the full-size counterparts live
//! in `usep-experiments` and EXPERIMENTS.md.

use usep::algos::{solve, Algorithm};
use usep::gen::{generate, SyntheticConfig};

fn base() -> SyntheticConfig {
    SyntheticConfig::default().with_events(40).with_users(250).with_capacity_mean(10)
}

/// Average Ω over a few seeds, to smooth instance noise.
fn mean_omega(a: Algorithm, cfg: &SyntheticConfig, seeds: std::ops::Range<u64>) -> f64 {
    let n = (seeds.end - seeds.start) as f64;
    seeds
        .map(|s| {
            let inst = generate(cfg, s);
            solve(a, &inst).omega(&inst)
        })
        .sum::<f64>()
        / n
}

#[test]
fn utility_grows_with_more_events() {
    // Fig. 2(a): "utility scores increase as |V| increases"
    let small = mean_omega(Algorithm::DeDPO, &base().with_events(10), 0..3);
    let large = mean_omega(Algorithm::DeDPO, &base().with_events(60), 0..3);
    assert!(large > small, "Ω(|V|=60) = {large} ≤ Ω(|V|=10) = {small}");
}

#[test]
fn utility_grows_with_capacity() {
    // Fig. 2(c): "utility scores increase as the mean of c_v increases"
    let small = mean_omega(Algorithm::DeDPO, &base().with_capacity_mean(2), 0..3);
    let large = mean_omega(Algorithm::DeDPO, &base().with_capacity_mean(30), 0..3);
    assert!(large > small, "Ω(c=30) = {large} ≤ Ω(c=2) = {small}");
}

#[test]
fn utility_falls_as_conflicts_grow() {
    // Fig. 2(d): "utility scores decrease as the conflict ratio increases"
    let lo = mean_omega(Algorithm::DeDPO, &base().with_conflict_ratio(0.0), 0..3);
    let hi = mean_omega(Algorithm::DeDPO, &base().with_conflict_ratio(1.0), 0..3);
    assert!(lo > hi, "Ω(cr=0) = {lo} ≤ Ω(cr=1) = {hi}");
}

#[test]
fn utility_grows_then_saturates_in_budget_factor() {
    // Fig. 3 col 1: steep growth to f_b ≈ 2, then plateau
    let o05 = mean_omega(Algorithm::DeDPO, &base().with_budget_factor(0.5), 0..3);
    let o2 = mean_omega(Algorithm::DeDPO, &base().with_budget_factor(2.0), 0..3);
    let o10 = mean_omega(Algorithm::DeDPO, &base().with_budget_factor(10.0), 0..3);
    assert!(o2 > o05, "Ω should grow from f_b 0.5 to 2");
    assert!(o10 >= o2, "Ω never falls with more budget");
    let early = (o2 - o05) / o05;
    let late = (o10 - o2) / o2;
    assert!(
        late < early,
        "growth should flatten: early {early:.3} vs late {late:.3}"
    );
}

#[test]
fn dedp_based_algorithms_win_on_utility() {
    // Fig. 2 overall: DeDP(O)-based best, RatioGreedy worst
    for seed in 0..3u64 {
        let inst = generate(&base(), 100 + seed);
        let dedpo = solve(Algorithm::DeDPORG, &inst).omega(&inst);
        let rg = solve(Algorithm::RatioGreedy, &inst).omega(&inst);
        let dg = solve(Algorithm::DeGreedy, &inst).omega(&inst);
        assert!(dedpo >= dg - 1e-9, "seed {seed}: DeDPO+RG {dedpo} < DeGreedy {dg}");
        assert!(dedpo > rg, "seed {seed}: DeDPO+RG {dedpo} ≤ RatioGreedy {rg}");
    }
}

#[test]
fn degreedy_is_faster_than_dedpo_at_scale() {
    // Fig. 2/4 running time: "DeGreedy is the fastest"
    let cfg = SyntheticConfig::default().with_events(100).with_users(400);
    let inst = generate(&cfg, 7);
    let t = |a: Algorithm| {
        let t0 = std::time::Instant::now();
        let p = solve(a, &inst);
        let d = t0.elapsed();
        assert!(p.validate(&inst).is_ok());
        d
    };
    // warm up then measure
    t(Algorithm::DeGreedy);
    let dg = t(Algorithm::DeGreedy);
    let dp = t(Algorithm::DeDPO);
    assert!(
        dg < dp,
        "DeGreedy ({dg:?}) should be faster than DeDPO ({dp:?}) at |V|=100, |U|=400"
    );
}

#[test]
fn dedp_advantage_widens_with_conflicts() {
    // Fig. 2(d): "DeDP-based algorithms perform significantly better ...
    // when the conflict ratio increases" — measure the relative gap of
    // DeGreedy to DeDPO at low and high cr
    let gap = |cr: f64| {
        let mut gaps = 0.0;
        for seed in 0..4u64 {
            let inst = generate(&base().with_conflict_ratio(cr), 300 + seed);
            let dp = solve(Algorithm::DeDPO, &inst).omega(&inst);
            let dg = solve(Algorithm::DeGreedy, &inst).omega(&inst);
            gaps += (dp - dg) / dp.max(1e-9);
        }
        gaps / 4.0
    };
    let low = gap(0.0);
    let high = gap(0.9);
    assert!(
        high >= low - 0.02,
        "relative DeDPO advantage should not shrink with conflicts: low {low:.4}, high {high:.4}"
    );
}
