//! **usep** — a Rust implementation of *Utility-Aware Social
//! Event-Participant Planning* (She, Tong, Chen — SIGMOD 2015).
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`core`] — the problem model: [`Instance`](core::Instance)s,
//!   [`Schedule`](core::Schedule)s, [`Planning`](core::Planning)s and the
//!   objective `Ω(A)`.
//! * [`algos`] — the paper's algorithms: `RatioGreedy`, `DeDP`, `DeDPO`,
//!   `DeGreedy`, their `+RG`-augmented variants, exact reference solvers,
//!   baselines, relaxation upper bounds, a local-search post-pass and a
//!   max-min fairness solver.
//! * [`gen`] — workload generators: the Table-7 synthetic generator and a
//!   Meetup-like EBSN simulator for the Table-6 city datasets.
//! * [`guard`] — resource governance: solve budgets (deadline, memory
//!   ceiling, cancellation) and truncation outcomes for bounded solves
//!   ([`SolveBudget`](guard::SolveBudget) +
//!   [`GuardedSolver`](algos::GuardedSolver)).
//! * [`metrics`] — timers, a counting allocator and experiment plumbing.
//! * [`oracle`] — independent verification: a from-scratch constraint
//!   validator sharing no code with the production cost path, a
//!   differential engine over every solver and service path, a
//!   metamorphic suite and a seeded fuzzer with failure minimization
//!   ([`run_fuzz`](oracle::run_fuzz) +
//!   [`verify_instance`](oracle::verify_instance)).
//! * [`trace`] — the instrumentation layer: algorithm counters, phase
//!   spans and JSON-lines trace export
//!   ([`solve_with_probe`](algos::solve_with_probe) +
//!   [`TraceSink`](trace::TraceSink)).
//!
//! # Quickstart
//!
//! ```
//! use usep::gen::{SyntheticConfig, generate};
//! use usep::algos::{Algorithm, solve};
//!
//! let inst = generate(&SyntheticConfig::tiny(), 42);
//! let plan = solve(Algorithm::DeDPO, &inst);
//! assert!(plan.validate(&inst).is_ok());
//! println!("Ω(A) = {:.2}", plan.omega(&inst));
//! ```

pub use usep_algos as algos;
pub use usep_core as core;
pub use usep_delta as delta;
pub use usep_gen as gen;
pub use usep_guard as guard;
pub use usep_metrics as metrics;
pub use usep_oracle as oracle;
pub use usep_trace as trace;

/// Crate version of the facade, for binaries that want to report it.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
