//! Offline stand-in for the `proptest` crate.
//!
//! Keeps the testing model — strategies sampled per case, `prop_assert*`
//! failures reported with the case inputs, `prop_assume` rejections —
//! but drops shrinking: a failing case reports the sampled values
//! directly (cases are deterministic per test-function name, so every
//! run reproduces the same failure). Self-contained: carries its own
//! small RNG rather than depending on the vendored `rand`.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// A `prop_assert*` failed; the test fails.
        Fail(String),
        /// A `prop_assume` filtered the inputs; the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    /// The deterministic per-test RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives the RNG for a named test: every run of `name` sees the
        /// same case sequence, which is what replaces shrinking here.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)`; `span > 0`.
        pub fn below(&mut self, span: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree: `sample` draws a final
    /// value directly and failures are never shrunk.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

    impl Strategy for std::ops::Range<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($t:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
        (A, B, C, D, E, F, G) (A, B, C, D, E, F, G, H) (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    );
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws a value from the type's full range.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The full-range strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// See [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible size arguments for [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing a uniformly random element of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of no options");
        Select { options }
    }

    /// See [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The uniform boolean strategy (`prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Uniform over `{false, true}`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::{bool, collection, sample};
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, running each a configured number of cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_cfg: $crate::test_runner::Config = $cfg;
                let mut __pt_rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut __pt_case: u32 = 0;
                let mut __pt_rejects: u32 = 0;
                while __pt_case < __pt_cfg.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __pt_rng);)+
                    let __pt_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __pt_result {
                        ::std::result::Result::Ok(()) => { __pt_case += 1; }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            __pt_rejects += 1;
                            assert!(
                                __pt_rejects < 4096,
                                "proptest: too many prop_assume rejections in {}",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__pt_msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}",
                                __pt_case,
                                stringify!($name),
                                __pt_msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pt_a, __pt_b) = (&$a, &$b);
        $crate::prop_assert!(
            *__pt_a == *__pt_b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __pt_a,
            __pt_b,
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pt_a, __pt_b) = (&$a, &$b);
        $crate::prop_assert!(
            *__pt_a != *__pt_b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            __pt_a,
        );
    }};
}

/// Skips the current case when its sampled inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 0u32..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..9, y in 0u8..=4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn mapped_and_collected(v in prop::collection::vec((0u32..5, prop::bool::ANY), 0..20)) {
            prop_assert!(v.len() < 20);
            for (n, _b) in v {
                prop_assert!(n < 5);
            }
        }

        #[test]
        fn select_and_assume(x in prop::sample::select(vec![2u32, 4, 6]), n in any::<u64>()) {
            prop_assume!(n.is_multiple_of(2));
            prop_assert!(x % 2 == 0);
            prop_assert_eq!(u64::from(x % 2), n % 2);
        }

        #[test]
        fn prop_map_applies(p in arb_pair().prop_map(|(a, b)| a + b)) {
            prop_assert!(p <= 18);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
