//! Offline stand-in for the `crossbeam` crate.
//!
//! Two subsets are used in this workspace: `crossbeam::thread::scope`
//! (by `usep-metrics::ensemble` and `usep-par`) and
//! `crossbeam::channel` (by `usep-par` for work distribution). Since
//! Rust 1.63 the standard library provides equivalent scoped threads,
//! so `thread` is a thin adapter over [`std::thread::scope`] that
//! mirrors crossbeam's signatures: the spawn closure receives a
//! `&Scope` argument and `scope` returns a `Result` (always `Ok` here —
//! a panicking unjoined child propagates through std's scope instead).
//! `channel` is a Mutex+Condvar MPMC queue; see its module docs.

#![forbid(unsafe_code)]

pub mod channel;

/// Scoped-thread API compatible with `crossbeam::thread`.
pub mod thread {
    use std::thread as std_thread;

    /// A scope handle; closures spawned in it may borrow from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all are joined before this returns. Always `Ok` (kept `Result` for
    /// crossbeam signature compatibility).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n: u32 = thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
