//! Multi-producer multi-consumer channels, API-compatible with the
//! `crossbeam-channel` subset this workspace uses.
//!
//! Implemented over a `Mutex<VecDeque>` + `Condvar` rather than a
//! lock-free queue: the workspace only pushes coarse work descriptors
//! (chunk ranges, seeds) through these channels, a few per worker per
//! solve, so queue contention is irrelevant and the simple
//! implementation keeps the stand-in auditable.
//!
//! Semantics mirror crossbeam's: senders and receivers are cloneable,
//! `recv` blocks until a message arrives or every `Sender` has been
//! dropped (then errors), and dropping all receivers does not error the
//! senders (messages are silently queued and freed on drop, which the
//! workspace never relies on).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender has been dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Sender::send`] when every receiver has been
/// dropped. Carries the unsent message back, as in crossbeam.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

struct Shared<T> {
    queue: Mutex<Inner<T>>,
    not_empty: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel. Cloneable: each message
/// is delivered to exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueues `msg`, waking one blocked receiver. Errors (returning
    /// the message) only when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        if inner.receivers == 0 {
            return Err(SendError(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        let mut inner = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        inner.senders += 1;
        drop(inner);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        inner.senders -= 1;
        let disconnected = inner.senders == 0;
        drop(inner);
        if disconnected {
            // wake every blocked receiver so they can observe the hangup
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        match inner.queue.pop_front() {
            Some(msg) => Ok(msg),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Drains the channel into an iterator that ends on disconnect
    /// (blocking between messages), as crossbeam's `IntoIterator` does.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        let mut inner = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        inner.receivers += 1;
        drop(inner);
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        inner.receivers -= 1;
    }
}

/// Blocking iterator over received messages; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn each_message_delivered_to_exactly_one_receiver() {
        let (tx, rx) = unbounded();
        for i in 0..100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let rx2 = rx.clone();
        let (a, b) = std::thread::scope(|s| {
            let h1 = s.spawn(|| rx.iter().collect::<Vec<u64>>());
            let h2 = s.spawn(|| rx2.iter().collect::<Vec<u64>>());
            (h1.join().unwrap(), h2.join().unwrap())
        });
        let mut all: Vec<u64> = a.into_iter().chain(b).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn blocked_receivers_wake_on_send_and_hangup() {
        let (tx, rx) = unbounded::<u64>();
        std::thread::scope(|s| {
            let h = s.spawn(|| rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42).unwrap();
            assert_eq!(h.join().unwrap(), Ok(42));
            let h = s.spawn(|| rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        });
    }
}
