//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes through the vendored serde's [`Content`] tree: a value is
//! rendered to `Content` and printed, or parsed into `Content` (a
//! recursive-descent parser) and rebuilt. Formatting matches upstream
//! closely enough for the repo's uses: compact and two-space-indented
//! pretty output, `null` for non-finite floats, shortest-roundtrip
//! float printing via Rust's `Display`.

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::from_content(content)?)
}

// ---------------------------------------------------------------------
// writer

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                // upstream serde_json also writes non-finite floats as null
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // multi-byte UTF-8 passes through: input is &str
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in unicode escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number chars");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Content::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Content {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value().unwrap();
        p.skip_ws();
        assert_eq!(p.pos, s.len(), "trailing input");
        v
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null"), Content::Null);
        assert_eq!(parse("true"), Content::Bool(true));
        assert_eq!(parse("-42"), Content::I64(-42));
        assert_eq!(parse("18446744073709551615"), Content::U64(u64::MAX));
        assert_eq!(parse("1.5e2"), Content::F64(150.0));
        assert_eq!(parse("\"a\\nb\""), Content::Str("a\nb".to_string()));
    }

    #[test]
    fn collections_roundtrip_through_text() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[],[3]]");
        let back: Vec<Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote\" slash\\ tab\t nl\n unicode\u{1F600}é".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""A😀""#), Content::Str("A\u{1F600}".to_string()));
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = vec![(1u32, 2u32)];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  "), "expected indentation: {text}");
        let back: Vec<(u32, u32)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<u32>("12x").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<u32>("[1]").is_err());
    }

    #[test]
    fn nonfinite_floats_write_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
