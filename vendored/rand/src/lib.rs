//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! hand-rolls the pieces the workspace actually uses:
//!
//! * [`rngs::StdRng`] — a xoshiro256\*\* generator seeded through
//!   SplitMix64 (`seed_from_u64`). **Not** the upstream ChaCha12 stream:
//!   sequences differ from real `rand`, but all in-repo consumers only
//!   rely on determinism-per-seed and statistical uniformity, both of
//!   which hold.
//! * [`Rng`] — `gen`, `gen_range` (integer + `f64` ranges), `gen_bool`.
//! * [`SeedableRng::seed_from_u64`].
//! * [`seq::SliceRandom`] — `choose` and `shuffle`.
//!
//! Nothing here is cryptographic.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics when empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)`; `span > 0`.
///
/// Uses 64-bit multiply-shift partitioning (Lemire) without the
/// rejection step — the bias is at most `span / 2^64`, far below
/// anything the statistical tests in this workspace can resolve.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return <$t as Standard>::sample_standard(rng);
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(
    u32 => u64, u64 => u64, usize => u64, i32 => i64, i64 => i64, u16 => u64, u8 => u64,
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A value of `T` from its standard distribution (`[0, 1)` for
    /// floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (`0 ≤ p ≤ 1`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically derives a generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256\*\* (Blackman–Vigna),
    /// seeded via SplitMix64. Deterministic per seed; passes BigCrush
    /// upstream. Stream differs from upstream `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as xoshiro's authors recommend
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// `choose`/`shuffle` on slices, as in `rand::seq`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_uniform_mean_and_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / f64::from(n) - 0.5).abs() < 0.005);
    }

    #[test]
    fn gen_range_bounds_and_mean() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut sum = 0i64;
        for _ in 0..n {
            let x = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&x));
            sum += x;
        }
        assert!((sum as f64 / n as f64).abs() < 0.03);
        for _ in 0..1000 {
            let x = r.gen_range(5u32..6);
            assert_eq!(x, 5);
            let f = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = StdRng::seed_from_u64(4);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(xs.as_slice().choose(&mut r).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut r).is_none());
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to stay sorted");
    }

    #[test]
    fn object_safe_usage_through_unsized_bound() {
        fn via<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut r = StdRng::seed_from_u64(5);
        let x = via(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
