//! Offline stand-in for the `rand_distr` crate.
//!
//! Implements the subset the workspace uses: the [`Distribution`] trait
//! and a [`Normal`] sampler (Marsaglia polar method — exact, not a CLT
//! approximation, so the tail probabilities the generators' statistical
//! tests rely on are correct).

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

/// Types that can draw values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter errors from distribution constructors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Error {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    BadMean,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            Error::BadMean => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for Error {}

/// The normal (Gaussian) distribution `N(mean, std²)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, std: f64) -> Result<Normal, Error> {
        if !mean.is_finite() {
            return Err(Error::BadMean);
        }
        if !(std.is_finite() && std >= 0.0) {
            return Err(Error::BadVariance);
        }
        Ok(Normal { mean, std })
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; stateless (the antithetic second
        // deviate is discarded so `&self` stays immutable).
        loop {
            let u = 2.0 * rng.gen::<f64>() - 1.0;
            let v = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std * u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(3.0, 0.0).is_ok());
    }

    #[test]
    fn mean_and_std_converge() {
        let mut r = StdRng::seed_from_u64(11);
        let d = Normal::new(10.0, 3.0).unwrap();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn zero_std_is_constant() {
        let mut r = StdRng::seed_from_u64(12);
        let d = Normal::new(5.0, 0.0).unwrap();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 5.0);
        }
    }

    #[test]
    fn tail_mass_is_gaussian() {
        // P(X > mean + std) ≈ 0.1587 — a CLT-style approximation with
        // clipped tails would miss this
        let mut r = StdRng::seed_from_u64(13);
        let d = Normal::new(0.0, 1.0).unwrap();
        let n = 200_000;
        let above = (0..n).filter(|_| d.sample(&mut r) > 1.0).count();
        let frac = above as f64 / n as f64;
        assert!((frac - 0.1587).abs() < 0.01, "got {frac}");
    }
}
