//! Offline stand-in for `serde_derive`.
//!
//! The real crate builds on `syn`/`quote`; neither is reachable in this
//! build environment, so the item grammar is parsed directly from the
//! `proc_macro::TokenStream` and the impls are emitted as strings parsed
//! back into token streams.
//!
//! Supported shapes (everything this workspace derives on):
//! * structs with named fields,
//! * tuple structs (single-field ones serialize as their inner value,
//!   like upstream newtype structs; longer ones as a sequence),
//! * enums with unit / newtype / tuple / struct variants, externally
//!   tagged (`"Variant"` or `{"Variant": ...}`);
//!
//! and the attributes `#[serde(transparent)]`, `#[serde(default)]` on
//! fields, and `#[serde(from = "T", into = "T")]` on containers.
//! Generics and lifetimes are rejected at expansion time with a clear
//! panic rather than silently miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("vendored serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("vendored serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------
// item model

struct Item {
    name: String,
    transparent: bool,
    from: Option<String>,
    into: Option<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------
// parsing

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Tokens = input.into_iter().peekable();
    let metas = take_attrs(&mut toks);

    let mut transparent = false;
    let mut from = None;
    let mut into = None;
    for (name, value) in metas {
        match (name.as_str(), value) {
            ("transparent", None) => transparent = true,
            ("from", Some(v)) => from = Some(v),
            ("into", Some(v)) => into = Some(v),
            (other, _) => panic!(
                "vendored serde_derive: unsupported container attribute `{other}` \
                 (supported: transparent, from = \"T\", into = \"T\")"
            ),
        }
    }

    skip_visibility(&mut toks);
    let kw = expect_ident(&mut toks, "`struct` or `enum`");
    let name = expect_ident(&mut toks, "type name");
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive: generic type `{name}` is not supported");
        }
    }

    let kind = match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!(
                "vendored serde_derive: unsupported struct body for `{name}` near {other:?} \
                 (where-clauses are not supported)"
            ),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("vendored serde_derive: malformed enum `{name}` near {other:?}"),
        },
        other => panic!("vendored serde_derive: expected struct or enum, found `{other}`"),
    };

    Item { name, transparent, from, into, kind }
}

/// Consumes leading `#[...]` attributes, returning the parsed
/// `#[serde(...)]` meta items (`name` or `name = "value"`) and
/// discarding everything else (doc comments, `#[derive]`, ...).
fn take_attrs(toks: &mut Tokens) -> Vec<(String, Option<String>)> {
    let mut metas = Vec::new();
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        let group = match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("vendored serde_derive: malformed attribute near {other:?}"),
        };
        let mut inner = group.stream().into_iter();
        match inner.next() {
            Some(TokenTree::Ident(i)) if i.to_string() == "serde" => match inner.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    metas.extend(parse_meta_list(g.stream()));
                }
                other => panic!("vendored serde_derive: expected #[serde(...)], found {other:?}"),
            },
            _ => {}
        }
    }
    metas
}

fn parse_meta_list(ts: TokenStream) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    let mut it = ts.into_iter().peekable();
    while let Some(t) = it.next() {
        let name = match t {
            TokenTree::Ident(i) => i.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => continue,
            other => panic!("vendored serde_derive: malformed serde attribute near {other:?}"),
        };
        let mut value = None;
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            it.next();
            match it.next() {
                Some(TokenTree::Literal(l)) => {
                    value = Some(l.to_string().trim_matches('"').to_string());
                }
                other => {
                    panic!("vendored serde_derive: expected string literal after `{name} =`, found {other:?}")
                }
            }
        }
        out.push((name, value));
    }
    out
}

fn skip_visibility(toks: &mut Tokens) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

fn expect_ident(toks: &mut Tokens, what: &str) -> String {
    match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("vendored serde_derive: expected {what}, found {other:?}"),
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut it: Tokens = ts.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let metas = take_attrs(&mut it);
        skip_visibility(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("vendored serde_derive: expected field name, found {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("vendored serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        // `<`/`>` are plain puncts in token trees, so generic arguments'
        // commas (e.g. `Vec<(String, f64)>`) need the depth counter.
        let mut depth = 0i32;
        loop {
            match it.next() {
                None => break,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
        let mut default = false;
        for (mname, _) in metas {
            match mname.as_str() {
                "default" => default = true,
                other => panic!(
                    "vendored serde_derive: unsupported field attribute `{other}` on `{name}` \
                     (supported: default)"
                ),
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut pending = false;
    for t in ts {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    pending = true;
                }
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    pending = false;
                }
                _ => pending = true,
            },
            _ => pending = true,
        }
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut it: Tokens = ts.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        take_attrs(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
            other => panic!("vendored serde_derive: expected variant name, found {other:?}"),
        };
        let mut kind = VariantKind::Unit;
        if matches!(it.peek(), Some(TokenTree::Group(_))) {
            if let Some(TokenTree::Group(g)) = it.next() {
                kind = match g.delimiter() {
                    Delimiter::Brace => VariantKind::Struct(parse_named_fields(g.stream())),
                    Delimiter::Parenthesis => VariantKind::Tuple(count_tuple_fields(g.stream())),
                    other => panic!(
                        "vendored serde_derive: unexpected {other:?} group in variant `{name}`"
                    ),
                };
            }
        }
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("vendored serde_derive: explicit discriminants are not supported (variant `{name}`)");
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------
// codegen (strings, parsed back into a TokenStream)

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into_ty) = &item.into {
        // #[serde(into = "T")]: requires Self: Clone + Into<T>, as upstream.
        format!(
            "let __serde_proxy: {into_ty} = \
             ::std::convert::Into::into(::std::clone::Clone::clone(self)); \
             serde::Serialize::to_content(&__serde_proxy)"
        )
    } else {
        match &item.kind {
            Kind::NamedStruct(fields) => {
                if item.transparent {
                    let f = single_field(fields, name);
                    format!("serde::Serialize::to_content(&self.{})", f.name)
                } else {
                    let entries: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "({:?}.to_string(), serde::Serialize::to_content(&self.{})),",
                                f.name, f.name
                            )
                        })
                        .collect();
                    format!("serde::Content::Map(::std::vec![{entries}])")
                }
            }
            Kind::TupleStruct(1) => "serde::Serialize::to_content(&self.0)".to_string(),
            Kind::TupleStruct(n) => {
                let entries: String = (0..*n)
                    .map(|i| format!("serde::Serialize::to_content(&self.{i}),"))
                    .collect();
                format!("serde::Content::Seq(::std::vec![{entries}])")
            }
            Kind::UnitStruct => "serde::Content::Null".to_string(),
            Kind::Enum(variants) => {
                let arms: String = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
                format!("match self {{ {arms} }}")
            }
        }
    };
    format!(
        "#[automatically_derived] impl serde::Serialize for {name} {{ \
         fn to_content(&self) -> serde::Content {{ {body} }} }}"
    )
}

fn ser_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("{name}::{vname} => serde::Content::Str({vname:?}.to_string()),")
        }
        VariantKind::Tuple(1) => format!(
            "{name}::{vname}(__serde_f0) => serde::Content::Map(::std::vec![\
             ({vname:?}.to_string(), serde::Serialize::to_content(__serde_f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__serde_f{i}")).collect();
            let entries: String = binds
                .iter()
                .map(|b| format!("serde::Serialize::to_content({b}),"))
                .collect();
            format!(
                "{name}::{vname}({}) => serde::Content::Map(::std::vec![({vname:?}.to_string(), \
                 serde::Content::Seq(::std::vec![{entries}]))]),",
                binds.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), serde::Serialize::to_content({})),",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "{name}::{vname} {{ {} }} => serde::Content::Map(::std::vec![\
                 ({vname:?}.to_string(), serde::Content::Map(::std::vec![{entries}]))]),",
                binds.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from_ty) = &item.from {
        format!(
            "let __serde_proxy: {from_ty} = serde::Deserialize::from_content(__serde_c)?; \
             ::std::result::Result::Ok(<Self as ::std::convert::From<{from_ty}>>::from(__serde_proxy))"
        )
    } else {
        match &item.kind {
            Kind::NamedStruct(fields) => {
                if item.transparent {
                    let f = single_field(fields, name);
                    format!(
                        "::std::result::Result::Ok({name} {{ {}: serde::Deserialize::from_content(__serde_c)? }})",
                        f.name
                    )
                } else {
                    let build = named_fields_build(name, fields, "__serde_map");
                    format!(
                        "match __serde_c {{ \
                         serde::Content::Map(mut __serde_map) => {{ let _ = &mut __serde_map; \
                           ::std::result::Result::Ok({name} {{ {build} }}) }} \
                         __serde_other => ::std::result::Result::Err(\
                           serde::DeError::expected({:?}, &__serde_other)) }}",
                        format!("map for {name}")
                    )
                }
            }
            Kind::TupleStruct(1) => format!(
                "::std::result::Result::Ok({name}(serde::Deserialize::from_content(__serde_c)?))"
            ),
            Kind::TupleStruct(n) => {
                let takes: String = (0..*n)
                    .map(|_| {
                        "serde::Deserialize::from_content(\
                         __serde_it.next().expect(\"length checked\"))?,"
                            .to_string()
                    })
                    .collect();
                format!(
                    "match __serde_c {{ \
                     serde::Content::Seq(__serde_items) if __serde_items.len() == {n} => {{ \
                       let mut __serde_it = __serde_items.into_iter(); \
                       ::std::result::Result::Ok({name}({takes})) }} \
                     __serde_other => ::std::result::Result::Err(\
                       serde::DeError::expected({:?}, &__serde_other)) }}",
                    format!("sequence of {n} for {name}")
                )
            }
            Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
            Kind::Enum(variants) => gen_enum_de(name, variants),
        }
    };
    format!(
        "#[automatically_derived] impl serde::Deserialize for {name} {{ \
         fn from_content(__serde_c: serde::Content) -> \
         ::std::result::Result<Self, serde::DeError> {{ {body} }} }}"
    )
}

/// `field: <take from map or fallback>,` for every named field.
fn named_fields_build(type_name: &str, fields: &[Field], map_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fallback = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(\
                     serde::DeError::missing_field({type_name:?}, {:?}))",
                    f.name
                )
            };
            format!(
                "{}: match serde::__take_field(&mut {map_var}, {:?}) {{ \
                 ::std::option::Option::Some(__serde_v) => serde::Deserialize::from_content(__serde_v)?, \
                 ::std::option::Option::None => {fallback}, }},",
                f.name, f.name
            )
        })
        .collect()
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("{:?} => ::std::result::Result::Ok({name}::{}),", v.name, v.name))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => unreachable!(),
                VariantKind::Tuple(1) => format!(
                    "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                     serde::Deserialize::from_content(__serde_val)?)),"
                ),
                VariantKind::Tuple(n) => {
                    let takes: String = (0..*n)
                        .map(|_| {
                            "serde::Deserialize::from_content(\
                             __serde_it.next().expect(\"length checked\"))?,"
                                .to_string()
                        })
                        .collect();
                    format!(
                        "{vname:?} => match __serde_val {{ \
                         serde::Content::Seq(__serde_items) if __serde_items.len() == {n} => {{ \
                           let mut __serde_it = __serde_items.into_iter(); \
                           ::std::result::Result::Ok({name}::{vname}({takes})) }} \
                         __serde_other => ::std::result::Result::Err(\
                           serde::DeError::expected({:?}, &__serde_other)) }},",
                        format!("sequence of {n} for variant {vname} of {name}")
                    )
                }
                VariantKind::Struct(fields) => {
                    let build = named_fields_build(name, fields, "__serde_inner");
                    format!(
                        "{vname:?} => match __serde_val {{ \
                         serde::Content::Map(mut __serde_inner) => {{ let _ = &mut __serde_inner; \
                           ::std::result::Result::Ok({name}::{vname} {{ {build} }}) }} \
                         __serde_other => ::std::result::Result::Err(\
                           serde::DeError::expected({:?}, &__serde_other)) }},",
                        format!("map for variant {vname} of {name}")
                    )
                }
            }
        })
        .collect();
    format!(
        "match __serde_c {{ \
         serde::Content::Str(__serde_s) => match __serde_s.as_str() {{ \
           {unit_arms} \
           __serde_other => ::std::result::Result::Err(serde::DeError::new(\
             ::std::format!(\"unknown unit variant `{{}}` of {name}\", __serde_other))), }}, \
         serde::Content::Map(mut __serde_map) => {{ \
           if __serde_map.len() != 1 {{ \
             return ::std::result::Result::Err(serde::DeError::new(\
               \"expected single-key variant map for {name}\")); }} \
           let (__serde_tag, __serde_val) = __serde_map.remove(0); \
           let _ = &__serde_val; \
           match __serde_tag.as_str() {{ \
             {tagged_arms} \
             __serde_other => ::std::result::Result::Err(serde::DeError::new(\
               ::std::format!(\"unknown variant `{{}}` of {name}\", __serde_other))), }} }} \
         __serde_other => ::std::result::Result::Err(\
           serde::DeError::expected(\"variant of {name}\", &__serde_other)), }}"
    )
}

fn single_field<'a>(fields: &'a [Field], name: &str) -> &'a Field {
    if fields.len() != 1 {
        panic!("vendored serde_derive: #[serde(transparent)] on `{name}` requires exactly one field");
    }
    &fields[0]
}
