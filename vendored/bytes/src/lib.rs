//! Offline stand-in for the `bytes` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements exactly the `Buf`/`BufMut`/`Bytes`/`BytesMut` subset that
//! `usep-core::codec` uses: little-endian put/get for the fixed-width
//! integer and float types, slice copies, and remaining-byte queries.
//! Semantics match the real crate for that subset (reads past the end
//! panic, as upstream `Buf` does).

#![forbid(unsafe_code)]

/// Read cursor over a byte buffer (little-endian helpers).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Next `cnt` readable bytes; `cnt <= remaining()`.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True while any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing. Panics when short.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

/// Append-only byte sink (little-endian helpers).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies `data` into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.to_vec(), pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no bytes were written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The written bytes as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freezes into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"AB");
        w.put_u8(7);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xdead_beef);
        w.put_i32_le(-5);
        w.put_i64_le(-9_000_000_000);
        w.put_f32_le(0.5);
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
        assert_eq!(&two, b"AB");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.get_i64_le(), -9_000_000_000);
        assert_eq!(r.get_f32_le(), 0.5);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn short_read_panics() {
        let mut r = Bytes::copy_from_slice(&[1, 2]);
        let _ = r.get_u32_le();
    }
}
