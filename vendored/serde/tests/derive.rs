//! End-to-end tests of the vendored derive macros, covering every shape
//! the workspace derives on: named structs, transparent newtypes,
//! defaulted fields, from/into proxies, and externally tagged enums.

use serde::{Content, Deserialize, Serialize};

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Plain {
    id: u32,
    name: String,
    weights: Vec<f64>,
    span: (i64, i64),
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
struct Wrapper(pub u32);

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct WithDefault {
    required: i32,
    #[serde(default)]
    optional: Vec<u8>,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(from = "ProxyData", into = "ProxyData")]
struct Proxied {
    doubled: u32,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ProxyData {
    half: u32,
}

impl From<Proxied> for ProxyData {
    fn from(p: Proxied) -> ProxyData {
        ProxyData { half: p.doubled / 2 }
    }
}

impl From<ProxyData> for Proxied {
    fn from(d: ProxyData) -> Proxied {
        Proxied { doubled: d.half * 2 }
    }
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
enum Mixed {
    Unit,
    Newtype(u32),
    Pair(u32, String),
    Named { mean: f64, std: f64 },
}

fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: &T) {
    let back = T::from_content(v.to_content()).expect("roundtrip deserialization");
    assert_eq!(&back, v);
}

#[test]
fn named_struct_roundtrips_and_keeps_field_order() {
    let v = Plain {
        id: 7,
        name: "x".to_string(),
        weights: vec![0.5, 1.5],
        span: (-3, 9),
    };
    match v.to_content() {
        Content::Map(entries) => {
            let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, ["id", "name", "weights", "span"]);
        }
        other => panic!("expected map, got {other:?}"),
    }
    roundtrip(&v);
}

#[test]
fn named_struct_reports_missing_field() {
    let err = Plain::from_content(Content::Map(vec![(
        "id".to_string(),
        Content::I64(1),
    )]))
    .unwrap_err();
    assert!(err.to_string().contains("name"), "got: {err}");
}

#[test]
fn unknown_fields_are_ignored() {
    let v = WithDefault::from_content(Content::Map(vec![
        ("required".to_string(), Content::I64(3)),
        ("junk".to_string(), Content::Bool(true)),
    ]))
    .unwrap();
    assert_eq!(v, WithDefault { required: 3, optional: vec![] });
}

#[test]
fn transparent_newtype_serializes_as_inner() {
    assert_eq!(Wrapper(9).to_content(), Content::I64(9));
    roundtrip(&Wrapper(9));
}

#[test]
fn defaulted_field_fills_in_and_roundtrips() {
    roundtrip(&WithDefault { required: -2, optional: vec![1, 2] });
}

#[test]
fn from_into_proxy_is_used_both_ways() {
    let v = Proxied { doubled: 10 };
    match v.to_content() {
        Content::Map(entries) => assert_eq!(entries[0].0, "half"),
        other => panic!("expected proxy map, got {other:?}"),
    }
    roundtrip(&v);
}

#[test]
fn enum_variants_are_externally_tagged() {
    assert_eq!(Mixed::Unit.to_content(), Content::Str("Unit".to_string()));
    match Mixed::Newtype(4).to_content() {
        Content::Map(entries) => {
            assert_eq!(entries.len(), 1);
            assert_eq!(entries[0].0, "Newtype");
            assert_eq!(entries[0].1, Content::I64(4));
        }
        other => panic!("expected tagged map, got {other:?}"),
    }
    for v in [
        Mixed::Unit,
        Mixed::Newtype(4),
        Mixed::Pair(1, "a".to_string()),
        Mixed::Named { mean: 0.5, std: 0.25 },
    ] {
        roundtrip(&v);
    }
}

#[test]
fn enum_rejects_unknown_variants() {
    assert!(Mixed::from_content(Content::Str("Nope".to_string())).is_err());
    assert!(Mixed::from_content(Content::Map(vec![(
        "Nope".to_string(),
        Content::I64(1),
    )]))
    .is_err());
}
