//! Offline stand-in for the `serde` crate.
//!
//! The real serde streams values through visitor-based
//! `Serializer`/`Deserializer` traits; reimplementing that machinery
//! offline would be thousands of lines. This workspace only ever moves
//! values to and from JSON text, so the vendored stack collapses the
//! data model to one owned tree type, [`Content`]:
//!
//! * [`Serialize`] renders a value into a `Content` tree;
//! * [`Deserialize`] rebuilds a value from one;
//! * the vendored `serde_json` converts `Content` ↔ JSON text.
//!
//! The derive macros (re-exported from the vendored `serde_derive`)
//! support structs, tuple structs, and enums with unit / newtype /
//! struct variants, plus the three container/field attributes this
//! repository uses: `#[serde(transparent)]`, `#[serde(default)]`, and
//! `#[serde(from = "T", into = "T")]`. Enum representation is
//! externally tagged, matching upstream serde's default.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every serialization passes through.
///
/// Maps preserve insertion order (`Vec` of pairs, not a hash map) so
/// output is deterministic and struct fields serialize in declaration
/// order, as upstream serde_json does.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (anything that fits in `i64`).
    I64(i64),
    /// An unsigned integer above `i64::MAX`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// An ordered key-value map.
    Map(Vec<(String, Content)>),
}

/// Deserialization failure: a human-readable path-less message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// Standard "missing field" error.
    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError::new(format!("missing field `{field}` of {ty}"))
    }

    /// Standard type-mismatch error.
    pub fn expected(what: &str, got: &Content) -> DeError {
        let kind = match got {
            Content::Null => "null",
            Content::Bool(_) => "a boolean",
            Content::I64(_) | Content::U64(_) => "an integer",
            Content::F64(_) => "a float",
            Content::Str(_) => "a string",
            Content::Seq(_) => "a sequence",
            Content::Map(_) => "a map",
        };
        DeError::new(format!("expected {what}, found {kind}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Values renderable into a [`Content`] tree.
pub trait Serialize {
    /// Renders `self`.
    fn to_content(&self) -> Content;
}

/// Values rebuildable from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, or explains why the tree does not fit.
    fn from_content(c: Content) -> Result<Self, DeError>;
}

// `Content` round-trips through itself, making it the generic
// "any JSON value" target (the counterpart of upstream's
// `serde_json::Value`): `serde_json::from_str::<Content>` validates
// arbitrary JSON without committing to a shape.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: Content) -> Result<Content, DeError> {
        Ok(c)
    }
}

/// Removes `key` from an ordered map, returning its value. Used by
/// derive-generated struct deserializers; not part of the public API.
#[doc(hidden)]
pub fn __take_field(map: &mut Vec<(String, Content)>, key: &str) -> Option<Content> {
    let i = map.iter().position(|(k, _)| k == key)?;
    Some(map.remove(i).1)
}

// ---------------------------------------------------------------------
// primitive impls

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(c: Content) -> Result<$t, DeError> {
                let n = match c {
                    Content::I64(n) => n,
                    Content::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))?,
                    other => return Err(DeError::expected(stringify!($t), &other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                match i64::try_from(*self) {
                    Ok(n) => Content::I64(n),
                    Err(_) => Content::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: Content) -> Result<$t, DeError> {
                let n = match c {
                    Content::I64(n) => u64::try_from(n)
                        .map_err(|_| DeError::new(concat!("negative value for ", stringify!($t))))?,
                    Content::U64(n) => n,
                    other => return Err(DeError::expected(stringify!($t), &other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: Content) -> Result<f64, DeError> {
        match c {
            Content::F64(x) => Ok(x),
            Content::I64(n) => Ok(n as f64),
            Content::U64(n) => Ok(n as f64),
            // serde_json writes non-finite floats as null
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::expected("f64", &other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: Content) -> Result<f32, DeError> {
        f64::from_content(c).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: Content) -> Result<bool, DeError> {
        match c {
            Content::Bool(b) => Ok(b),
            other => Err(DeError::expected("bool", &other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: Content) -> Result<String, DeError> {
        match c {
            Content::Str(s) => Ok(s),
            other => Err(DeError::expected("string", &other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: Content) -> Result<Vec<T>, DeError> {
        match c {
            Content::Seq(items) => items.into_iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", &other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_content(c: Content) -> Result<std::sync::Arc<T>, DeError> {
        T::from_content(c).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: Content) -> Result<Option<T>, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: Content) -> Result<Self, DeError> {
                const LEN: usize = [$($n),+].len();
                match c {
                    Content::Seq(items) if items.len() == LEN => {
                        let mut it = items.into_iter();
                        Ok(($($t::from_content(it.next().expect("length checked"))?,)+))
                    }
                    other => Err(DeError::expected("tuple sequence", &other)),
                }
            }
        }
    )*};
}

ser_de_tuple!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content((-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(true.to_content()).unwrap());
        assert_eq!(String::from_content("hi".to_string().to_content()).unwrap(), "hi");
        assert_eq!(
            Vec::<u32>::from_content(vec![1u32, 2, 3].to_content()).unwrap(),
            vec![1, 2, 3]
        );
        let pair = ("x".to_string(), vec![0.5f64]);
        assert_eq!(<(String, Vec<f64>)>::from_content(pair.to_content()).unwrap(), pair);
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::from_content(Content::I64(300)).is_err());
        assert!(u32::from_content(Content::I64(-1)).is_err());
        assert!(i32::from_content(Content::U64(u64::MAX)).is_err());
    }

    #[test]
    fn float_accepts_integer_content() {
        assert_eq!(f64::from_content(Content::I64(3)).unwrap(), 3.0);
    }

    #[test]
    fn option_null_and_value() {
        assert_eq!(Option::<u32>::from_content(Content::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_content(Content::I64(5)).unwrap(), Some(5));
        assert_eq!(None::<u32>.to_content(), Content::Null);
    }

    #[test]
    fn take_field_preserves_remaining_order() {
        let mut m = vec![
            ("a".to_string(), Content::I64(1)),
            ("b".to_string(), Content::I64(2)),
            ("c".to_string(), Content::I64(3)),
        ];
        assert_eq!(__take_field(&mut m, "b"), Some(Content::I64(2)));
        assert_eq!(__take_field(&mut m, "b"), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].0, "a");
        assert_eq!(m[1].0, "c");
    }
}
