//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use — groups with
//! `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_with_input`, `BenchmarkId` — on a plain wall-clock harness
//! that prints median / mean / p95 nanoseconds per iteration. No
//! statistics beyond that, no HTML reports, no baseline comparison.
//!
//! `cargo bench` passes `--bench` to the binary; when that flag is
//! absent (`cargo test` also builds and runs `harness = false` bench
//! targets) the harness exits immediately so test runs stay fast, the
//! same reason upstream criterion has a separate test mode.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` as upstream
/// allows; the workspace's benches import `std::hint::black_box`
/// directly, which is what this is.
pub use std::hint::black_box;

/// The benchmark context handed to `criterion_group!` functions.
pub struct Criterion {
    enabled: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut enabled = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => enabled = true,
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion { enabled, filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total time across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        if !self.criterion.enabled {
            return self;
        }
        if let Some(f) = &self.criterion.filter {
            if !label.contains(f.as_str()) {
                return self;
            }
        }

        // Warm-up: also calibrates iterations per sample.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_started = Instant::now();
        while Instant::now() < warm_deadline {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            routine(&mut b, input);
            warm_iters += 1;
        }
        let per_iter = warm_started.elapsed().as_nanos() as u64 / warm_iters.max(1);
        let per_sample = self.measurement_time.as_nanos() as u64
            / self.sample_size as u64
            / per_iter.max(1);
        let iters_per_sample = per_sample.max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            routine(&mut b, input);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let p95 = samples_ns[(samples_ns.len() * 95 / 100).min(samples_ns.len() - 1)];
        println!(
            "{label:<50} median {:>12} mean {:>12} p95 {:>12}  ({} samples x {} iters)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(p95),
            self.sample_size,
            iters_per_sample,
        );
        self
    }

    /// Ends the group (prints nothing; present for API compatibility).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times the routine under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, accumulating into this sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

/// A two-part benchmark label, `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter value into one label.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }
}

/// Bundles benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main`, running groups only under `cargo bench`
/// (`--bench` argument); exits immediately in test mode.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !::std::env::args().skip(1).any(|a| a == "--bench") {
                // `cargo test` executes harness = false bench binaries;
                // skip the (expensive) group bodies there.
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_all_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher { iters: 17, elapsed: Duration::ZERO };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_joins_parts() {
        let id = BenchmarkId::new("RatioGreedy", 500);
        assert_eq!(id.label, "RatioGreedy/500");
    }

    #[test]
    fn disabled_group_skips_routines() {
        let mut c = Criterion { enabled: false, filter: None };
        let mut g = c.benchmark_group("g");
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("f", 1), &(), |b, _| {
            ran = true;
            b.iter(|| ());
        });
        g.finish();
        assert!(!ran);
    }

    #[test]
    fn format_scales_units() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(1500.0), "1.500 µs");
        assert_eq!(fmt_ns(2.5e6), "2.500 ms");
        assert_eq!(fmt_ns(3.2e9), "3.200 s");
    }
}
