//! The paper's motivating scenario (§1): Alice the sports-and-music fan
//! faces a Saturday with three partially conflicting Meetup events — a
//! running club 9–11 a.m., a tennis match 10 a.m.–1:30 p.m. and a jazz
//! party 2–3 p.m. — plus travel costs and a budget. USEP plans for her
//! *and* everyone else at once, respecting event capacities.
//!
//! ```sh
//! cargo run --release --example weekend_planner
//! ```

use usep::algos::{DeDPO, Solver};
use usep::core::{Cost, InstanceBuilder, Point, TimeInterval, UserId};

fn t(hhmm: (i64, i64)) -> i64 {
    hhmm.0 * 60 + hhmm.1 // minutes since midnight
}

fn main() {
    let mut b = InstanceBuilder::new();

    // Saturday's events around town (locations on a city grid, one unit
    // ≈ 100 m of Manhattan walking; cost is travel effort).
    let running = b.event(
        20,
        Point::new(10, 40),
        TimeInterval::new(t((9, 0)), t((11, 0))).unwrap(),
    );
    let tennis = b.event(
        4,
        Point::new(60, 35),
        TimeInterval::new(t((10, 0)), t((13, 30))).unwrap(),
    );
    let jazz = b.event(
        30,
        Point::new(30, 5),
        TimeInterval::new(t((14, 0)), t((15, 0))).unwrap(),
    );
    let brunch = b.event(
        6,
        Point::new(15, 35),
        TimeInterval::new(t((11, 30)), t((13, 0))).unwrap(),
    );
    let names = ["running club", "tennis match", "jazz party", "brunch meetup"];

    // Users: Alice and friends, with homes and travel budgets.
    let _alice = b.user(Point::new(20, 30), Cost::new(120));
    let _bob = b.user(Point::new(55, 40), Cost::new(60));
    let _carol = b.user(Point::new(28, 8), Cost::new(90));
    let _dave = b.user(Point::new(12, 42), Cost::new(200));
    let people = ["Alice", "Bob", "Carol", "Dave"];

    // Interests (μ): Alice likes everything, the others are pickier.
    for (v, mus) in [
        (running, [0.9, 0.1, 0.0, 0.8]),
        (tennis, [0.8, 0.9, 0.0, 0.3]),
        (jazz, [0.7, 0.2, 0.9, 0.6]),
        (brunch, [0.5, 0.4, 0.6, 0.7]),
    ] {
        for (u, mu) in mus.into_iter().enumerate() {
            b.utility(v, UserId(u as u32), mu);
        }
    }

    let inst = b.build().expect("valid instance");
    let planning = DeDPO::new().with_augment().solve(&inst);
    planning.validate(&inst).expect("feasible");

    println!("USEP planning (DeDPO+RG), Ω = {:.2}\n", planning.omega(&inst));
    for (ui, name) in people.iter().enumerate() {
        let u = UserId(ui as u32);
        let s = planning.schedule(u);
        if s.is_empty() {
            println!("{name:>6}: stays home");
            continue;
        }
        let legs: Vec<String> = s
            .events()
            .iter()
            .map(|&v| {
                let e = inst.event(v);
                format!(
                    "{} ({:02}:{:02}-{:02}:{:02})",
                    names[v.index()],
                    e.time.start() / 60,
                    e.time.start() % 60,
                    e.time.end() / 60,
                    e.time.end() % 60
                )
            })
            .collect();
        println!(
            "{name:>6}: {}  [travel {} of budget {}]",
            legs.join(" → "),
            s.total_cost(&inst, u),
            inst.user(u).budget
        );
    }

    // The running club (9-11) and tennis (10-13:30) conflict: nobody can
    // attend both, which is exactly the dilemma the paper opens with.
    let both = inst.cost_vv(running, tennis).is_finite()
        || inst.cost_vv(tennis, running).is_finite();
    println!("\nrunning club and tennis compatible? {both} (they overlap 10-11 a.m.)");
}
