//! Budget sensitivity: sweep the budget factor `f_b` (Figure 3's
//! x-axis) on one instance family and watch Ω saturate once capacities —
//! not budgets — become the binding constraint (the paper's observation
//! for `f_b ≥ 2`).
//!
//! ```sh
//! cargo run --release --example budget_sensitivity
//! ```

use usep::algos::{solve, Algorithm};
use usep::gen::{generate, SyntheticConfig};

fn main() {
    let algos = [Algorithm::DeDPO, Algorithm::DeGreedy, Algorithm::RatioGreedy];
    println!("{:<8} {:>12} {:>12} {:>12}", "f_b", "DeDPO", "DeGreedy", "RatioGreedy");
    let mut prev: Option<f64> = None;
    for fb in [0.5, 1.0, 2.0, 5.0, 10.0] {
        let cfg = SyntheticConfig::default()
            .with_events(40)
            .with_users(300)
            .with_capacity_mean(10)
            .with_budget_factor(fb);
        let inst = generate(&cfg, 99);
        let omegas: Vec<f64> = algos.iter().map(|&a| solve(a, &inst).omega(&inst)).collect();
        println!("{fb:<8} {:>12.2} {:>12.2} {:>12.2}", omegas[0], omegas[1], omegas[2]);
        if let Some(p) = prev {
            let growth = (omegas[0] - p) / p * 100.0;
            println!("{:<8} DeDPO grew {growth:+.1}% over the previous f_b", "");
        }
        prev = Some(omegas[0]);
    }
    println!("\nΩ climbs steeply up to f_b ≈ 2, then flattens: events fill up");
    println!("and extra travel budget has nothing left to buy (Fig. 3, col 1).");
}
