//! Plan a whole simulated Meetup city (Table 6's Singapore): tagged
//! users and events, tag-similarity utilities, clustered geography —
//! then compare the paper's algorithms end to end.
//!
//! ```sh
//! cargo run --release --example city_meetup [vancouver|auckland|singapore]
//! ```

use usep::algos::{solve, Algorithm};
use usep::core::PlanningStats;
use usep::gen::{generate_city, CityConfig};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "singapore".to_string());
    let cfg = match which.as_str() {
        "vancouver" => CityConfig::vancouver(),
        "auckland" => CityConfig::auckland(),
        "singapore" => CityConfig::singapore(),
        other => {
            eprintln!("unknown city '{other}' (vancouver|auckland|singapore)");
            std::process::exit(1);
        }
    };
    println!("simulating {} — |V| = {}, |U| = {}", cfg.name, cfg.num_events, cfg.num_users);
    let inst = generate_city(&cfg, 2015);
    println!(
        "generated: conflict ratio {:.2}, mean capacity {:.1}\n",
        inst.conflict_ratio(),
        inst.events().iter().map(|e| f64::from(e.capacity)).sum::<f64>()
            / inst.num_events() as f64
    );

    let mut best: Option<(Algorithm, f64)> = None;
    for algo in Algorithm::PAPER_SET {
        let t0 = std::time::Instant::now();
        let planning = solve(algo, &inst);
        let secs = t0.elapsed().as_secs_f64();
        planning.validate(&inst).expect("feasible");
        let stats = PlanningStats::compute(&inst, &planning);
        println!(
            "{:<13} Ω = {:>8.2}  served {:>4}/{} users  fill {:>5.1}%  in {:.2}s",
            algo.name(),
            stats.omega,
            stats.users_served,
            inst.num_users(),
            100.0 * stats.mean_fill_rate,
            secs
        );
        if best.as_ref().is_none_or(|&(_, o)| stats.omega > o) {
            best = Some((algo, stats.omega));
        }
    }
    let (algo, omega) = best.unwrap();
    println!("\nbest planning: {} with Ω = {omega:.2}", algo.name());

    // also show the value of multi-event planning over a single-event
    // (SEO-style) assignment
    let single = solve(Algorithm::SingleEventGreedy, &inst).omega(&inst);
    println!("single-event baseline Ω = {single:.2} ({:.1}% of the best)", 100.0 * single / omega);
}
