//! Fairness vs efficiency: when event capacity is scarce, maximizing
//! total utility Ω concentrates events on the highest-μ users. The
//! max-min water-filling solver (inspired by the bottleneck-aware
//! arrangement the paper cites as \[29\]) trades a few percent of Ω for
//! a much flatter distribution.
//!
//! ```sh
//! cargo run --release --example fair_allocation
//! ```

use usep::algos::{solve, Algorithm, MaxMinGreedy, Solver};
use usep::core::FairnessStats;
use usep::gen::{generate, SyntheticConfig};

fn main() {
    // scarce capacity: 20 events × mean capacity 4 ≈ 80 slots, 150 users
    let cfg = SyntheticConfig::default()
        .with_events(20)
        .with_users(150)
        .with_capacity_mean(4);
    let inst = generate(&cfg, 7);
    println!(
        "scarcity: ~{} slots for {} users\n",
        20 * 4,
        inst.num_users()
    );

    println!(
        "{:<13} {:>8} {:>12} {:>10} {:>14}",
        "algorithm", "Ω", "Jain index", "served %", "median Ω_u"
    );
    let show = |name: &str, planning: &usep::core::Planning| {
        planning.validate(&inst).expect("feasible");
        let f = FairnessStats::compute(&inst, planning);
        println!(
            "{:<13} {:>8.2} {:>12.3} {:>9.1}% {:>14.3}",
            name,
            planning.omega(&inst),
            f.jain_index,
            100.0 * f.served_fraction,
            f.median_served
        );
    };
    for algo in [Algorithm::DeDPORG, Algorithm::DeGreedyRG, Algorithm::RatioGreedy] {
        show(algo.name(), &solve(algo, &inst));
    }
    show("MaxMinGreedy", &MaxMinGreedy.solve(&inst));

    println!("\nMaxMinGreedy spreads the scarce slots across more users (higher");
    println!("Jain index, more served) at a modest cost in total utility — the");
    println!("classic efficiency/fairness trade-off, quantified per-instance by");
    println!("`usep::core::FairnessStats`.");
}
