//! Remark 2 in action: events with participation fees. The paper's
//! reduction charges each event's fee on the inbound travel leg
//! (`cost'(u, v) = cost(u, v) + fee_v`), so a money budget covers both
//! travel and tickets — no algorithm changes needed.
//!
//! Also shows Remark 1: restricting each user to their own candidate
//! list `V_u` by zeroing utilities outside it.
//!
//! ```sh
//! cargo run --release --example ticketed_events
//! ```

use usep::algos::{solve, Algorithm};
use usep::core::{Cost, EventId, InstanceBuilder, Point, TimeInterval, UserId};

fn main() {
    let mut b = InstanceBuilder::new();
    // a free park run, a cheap gallery, a pricey concert — sequential slots
    let park = b.event(50, Point::new(2, 2), TimeInterval::new(540, 660).unwrap());
    let gallery = b.event(10, Point::new(6, 3), TimeInterval::new(720, 840).unwrap());
    let concert = b.event(5, Point::new(4, 8), TimeInterval::new(900, 1020).unwrap());
    b.fee(park, 0);
    b.fee(gallery, 8);
    b.fee(concert, 40);
    let names = ["park run (free)", "gallery ($8)", "concert ($40)"];

    let budgets = [20u32, 40, 80];
    for &budget in &budgets {
        b.user(Point::new(0, 0), Cost::new(budget));
    }
    for v in [park, gallery, concert] {
        for u in 0..budgets.len() as u32 {
            b.utility(v, UserId(u), 0.8);
        }
    }
    let inst = b.build().expect("valid instance");

    println!("everyone likes everything equally; budgets differ:\n");
    let plan = solve(Algorithm::DeDPO, &inst);
    plan.validate(&inst).unwrap();
    for (ui, &budget) in budgets.iter().enumerate() {
        let u = UserId(ui as u32);
        let s = plan.schedule(u);
        let what: Vec<&str> = s.events().iter().map(|&v| names[v.index()]).collect();
        println!(
            "budget ${budget:>3}: {}  (spends {} on travel+tickets)",
            if what.is_empty() { "stays home".to_string() } else { what.join(" + ") },
            s.total_cost(&inst, u)
        );
    }

    // Remark 1: the $80 user refuses concerts — restrict their list
    let sets: Vec<Vec<EventId>> = vec![
        vec![park, gallery, concert],
        vec![park, gallery, concert],
        vec![park, gallery], // no concert for user 2
    ];
    let restricted = inst.restrict_candidates(&sets);
    let plan2 = solve(Algorithm::DeDPO, &restricted);
    let s = plan2.schedule(UserId(2));
    let what: Vec<&str> = s.events().iter().map(|&v| names[v.index()]).collect();
    println!("\nwith a candidate list excluding the concert, the $80 user gets:");
    println!("  {}", what.join(" + "));
    assert!(!s.contains(concert));
}
