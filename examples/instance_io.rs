//! Instance (de)serialization: save a generated instance to JSON, load
//! it back, solve, and verify the plannings agree. Useful for pinning
//! benchmark inputs or shipping instances between machines.
//!
//! ```sh
//! cargo run --release --example instance_io
//! ```

use usep::algos::{solve, Algorithm};
use usep::core::Instance;
use usep::gen::{generate, SyntheticConfig};

fn main() {
    let inst = generate(&SyntheticConfig::tiny().with_users(40), 7);

    let path = std::env::temp_dir().join("usep_instance.json");
    let json = serde_json::to_string_pretty(&inst).expect("instances serialize");
    std::fs::write(&path, &json).expect("write instance");
    println!("wrote {} ({} bytes)", path.display(), json.len());

    let loaded: Instance =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back"))
            .expect("instances deserialize");
    assert_eq!(loaded, inst, "round trip is lossless");
    println!(
        "reloaded: |V| = {}, |U| = {}, cr = {:.2} (derived indices rebuilt)",
        loaded.num_events(),
        loaded.num_users(),
        loaded.conflict_ratio()
    );

    let a = solve(Algorithm::DeDPO, &inst);
    let b = solve(Algorithm::DeDPO, &loaded);
    assert_eq!(a, b, "same instance, same deterministic planning");
    println!("DeDPO on both copies: identical plannings, Ω = {:.3}", a.omega(&inst));

    // plannings serialize too — persist a computed plan next to its input
    let plan_json = serde_json::to_string(&a).expect("plannings serialize");
    println!("planning serializes to {} bytes of JSON", plan_json.len());
    std::fs::remove_file(&path).ok();
}
