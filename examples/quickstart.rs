//! Quickstart: generate a synthetic EBSN instance and compare all six
//! planning algorithms of the paper.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use usep::algos::{solve, Algorithm};
use usep::core::PlanningStats;
use usep::gen::{generate, SyntheticConfig};

fn main() {
    // A small Table-7-style instance: 30 events, 200 users, default
    // conflict ratio 0.25 and budget factor 2.
    let config = SyntheticConfig::default()
        .with_events(30)
        .with_users(200)
        .with_capacity_mean(10);
    let inst = generate(&config, 42);
    println!(
        "instance: |V| = {}, |U| = {}, conflict ratio = {:.2}\n",
        inst.num_events(),
        inst.num_users(),
        inst.conflict_ratio()
    );

    println!(
        "{:<13} {:>10} {:>12} {:>13} {:>14}",
        "algorithm", "Ω(A)", "assignments", "users served", "mean schedule"
    );
    for algo in Algorithm::PAPER_SET {
        let planning = solve(algo, &inst);
        planning.validate(&inst).expect("all solvers return feasible plannings");
        let stats = PlanningStats::compute(&inst, &planning);
        println!(
            "{:<13} {:>10.2} {:>12} {:>13} {:>14.2}",
            algo.name(),
            stats.omega,
            stats.assignments,
            stats.users_served,
            stats.mean_schedule_len
        );
    }

    println!("\nDeDP and DeDPO always return identical plannings;");
    println!("DeGreedy trades a little utility for a lot of speed (see benches).");
}
